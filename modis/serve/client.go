package serve

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/modis"
)

// Client drives a modisd daemon (or a modisproxy front) over HTTP —
// the programmatic twin of the curl examples in docs/serving.md and
// the transport behind cmd/modis -remote. The zero configuration makes
// every call exactly once; WithRetry arms the fleet's unified
// retry/backoff policy (submits then auto-carry idempotency keys, so a
// retried submit can never double-run), and WithHedge arms hedged
// reads for latency-sensitive GETs.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
	hedge time.Duration
}

// NewClient returns a client for the daemon at base (e.g.
// "http://127.0.0.1:8080"); a missing scheme defaults to http.
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// WithRetry sets the client's retry policy and returns the client.
// With retries armed, Submit generates an idempotency key when the
// request carries none, so every retry replays the original job
// instead of starting a second one, and Events resumes dropped streams
// from the last delivered event.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	c.retry = p
	return c
}

// WithHedge arms hedged reads: a GET still in flight after d gets a
// second, identical request raced against it; the first response wins.
// Writes are never hedged — only the idempotency key makes a repeated
// submit safe, and that is the retry path's job.
func (c *Client) WithHedge(d time.Duration) *Client {
	c.hedge = d
	return c
}

// NewIdempotencyKey returns a fresh submission key: 16 random bytes,
// hex. Callers that want to retry a submit across their own process
// restarts should mint the key once, persist it with the request, and
// reuse it on every attempt.
func NewIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("idem-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// doRaw performs one HTTP exchange and returns the raw response body.
// Non-2xx responses become *APIError carrying the status and the
// server's Retry-After hint, so callers classify with Retryable.
func (c *Client) doRaw(ctx context.Context, method, path string, blob []byte) ([]byte, error) {
	var rd io.Reader
	if blob != nil {
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if blob != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(body))
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		ae := &APIError{Status: resp.StatusCode, Msg: msg}
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, perr := strconv.Atoi(v); perr == nil && secs > 0 {
				ae.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, ae
	}
	return body, nil
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var blob []byte
	if body != nil {
		var err error
		blob, err = json.Marshal(body)
		if err != nil {
			return err
		}
	}
	op := func(ctx context.Context) error {
		var respBody []byte
		var err error
		if method == http.MethodGet && c.hedge > 0 {
			respBody, err = c.hedged(ctx, method, path)
		} else {
			respBody, err = c.doRaw(ctx, method, path, blob)
		}
		if err != nil {
			return err
		}
		if out == nil {
			return nil
		}
		return json.Unmarshal(respBody, out)
	}
	// Reads and cancels are naturally idempotent, so the retry policy
	// covers them directly; submits carry their own budget-aware retry
	// loop in Submit.
	if p := c.retry.withDefaults(); method != http.MethodPost && p.MaxAttempts > 1 {
		return p.Do(ctx, op)
	}
	return op(ctx)
}

// hedged races up to two identical GETs: the second launches once the
// first has been in flight for the hedge delay, and the first success
// wins (the loser is cancelled). One slow replica then costs one hedge
// delay instead of a timeout.
func (c *Client) hedged(ctx context.Context, method, path string) ([]byte, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		body []byte
		err  error
	}
	ch := make(chan result, 2)
	run := func() {
		body, err := c.doRaw(hctx, method, path, nil)
		ch <- result{body, err}
	}
	go run()
	inflight := 1
	t := time.NewTimer(c.hedge)
	defer t.Stop()
	var firstErr error
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				return r.body, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if inflight--; inflight == 0 {
				return nil, firstErr
			}
		case <-t.C:
			go run()
			inflight++
		}
	}
}

// Submit submits a job and returns its accepted status (the job id in
// particular). With a retry policy armed (WithRetry), transport
// failures and retryable statuses are retried under the policy: the
// submission carries an idempotency key (generated when the request
// has none) so a retried submit returns the original job, and
// TimeoutMS is treated as a deadline budget — each retry forwards only
// what remains of it, and a budget spent entirely on failed attempts
// surfaces as a terminal 504.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (*JobStatus, error) {
	p := c.retry.withDefaults()
	if p.MaxAttempts > 1 && req.IdempotencyKey == "" {
		req.IdempotencyKey = NewIdempotencyKey()
	}
	var start time.Time
	budget := time.Duration(req.TimeoutMS) * time.Millisecond
	if budget > 0 {
		start = time.Now()
	}
	var st JobStatus
	err := p.Do(ctx, func(ctx context.Context) error {
		attempt := req
		if budget > 0 {
			remaining := budget - time.Since(start)
			if remaining <= 0 {
				return &APIError{Status: http.StatusGatewayTimeout, Msg: "serve: deadline budget exhausted before submit could be retried"}
			}
			attempt.TimeoutMS = int64(remaining / time.Millisecond)
			if attempt.TimeoutMS < 1 {
				attempt.TimeoutMS = 1
			}
		}
		return c.do(ctx, http.MethodPost, "/v1/jobs", attempt, &st)
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// Status fetches a job's current status (including the report once
// done).
func (c *Client) Status(ctx context.Context, jobID string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+jobID, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel cancels a job.
func (c *Client) Cancel(ctx context.Context, jobID string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+jobID, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// List fetches one page of the daemon's job ledger: jobs in
// submission order after cursor (empty starts from the beginning), at
// most limit per page (0 = all). A non-empty NextCursor in the
// response continues the listing.
func (c *Client) List(ctx context.Context, cursor string, limit int) (*JobsPageResponse, error) {
	path := "/v1/jobs"
	q := url.Values{}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var page JobsPageResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &page); err != nil {
		return nil, err
	}
	return &page, nil
}

// Workloads lists the daemon's workload catalog: each entry carries
// the catalog name, the descriptor hash the fleet routes on, and the
// full descriptor.
func (c *Client) Workloads(ctx context.Context) ([]WorkloadInfo, error) {
	var infos []WorkloadInfo
	if err := c.do(ctx, http.MethodGet, "/v1/workloads", nil, &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// AppendRows appends a batch of rows to the named workload's table on
// the daemon (or through the proxy, which forwards to the owning
// node). Appends are not idempotent, so they are never retried
// automatically — a transport failure leaves the committed/uncommitted
// question to the caller, who can compare the catalog's table_version.
func (c *Client) AppendRows(ctx context.Context, workload string, req AppendRowsRequest) (*AppendResponse, error) {
	var out AppendResponse
	if err := c.do(ctx, http.MethodPost, "/v1/workloads/"+url.PathEscape(workload)+"/rows", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Algorithms lists the daemon's registered algorithm keys.
func (c *Client) Algorithms(ctx context.Context) ([]string, error) {
	var names []string
	if err := c.do(ctx, http.MethodGet, "/v1/algorithms", nil, &names); err != nil {
		return nil, err
	}
	return names, nil
}

// Events streams a job's progress events, delivering each to fn in
// order, until the stream ends (job terminated or ctx cancelled). It
// returns the terminal status carried by the stream's closing "end"
// event. With a retry policy armed, a stream dropped mid-flight — node
// restart, proxy failover, transport reset — reconnects with
// Last-Event-ID and resumes exactly after the last delivered event, so
// fn never sees a duplicate or a gap; the attempt counter resets
// whenever a reconnect makes progress.
func (c *Client) Events(ctx context.Context, jobID string, fn func(modis.Event)) (*JobStatus, error) {
	p := c.retry.withDefaults()
	lastID := -1
	fails := 0
	for {
		before := lastID
		final, err := c.streamEvents(ctx, jobID, &lastID, fn)
		if final != nil || (err == nil && p.MaxAttempts <= 1) {
			return final, err
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if err == nil {
			// The stream ended cleanly but carried no terminal status:
			// the server went away mid-job. Resumable.
			err = io.ErrUnexpectedEOF
		}
		if p.MaxAttempts <= 1 || !Retryable(err) {
			return nil, err
		}
		if lastID > before {
			fails = 0
		}
		fails++
		if fails >= p.MaxAttempts {
			return nil, err
		}
		hint, _ := RetryAfterHint(err)
		t := time.NewTimer(p.backoff(fails, hint))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
}

// streamEvents runs one SSE connection, tracking the server's event
// ids in *lastID (so a reconnect resumes after the last delivered
// event) and returning the "end" event's terminal status when the
// stream carried one.
func (c *Client) streamEvents(ctx context.Context, jobID string, lastID *int, fn func(modis.Event)) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		return nil, err
	}
	if *lastID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(*lastID))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		blob, _ := io.ReadAll(resp.Body)
		ae := &APIError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(blob))}
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, perr := strconv.Atoi(v); perr == nil && secs > 0 {
				ae.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, ae
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	event, data, id := "", "", -1
	var final *JobStatus
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			if n, perr := strconv.Atoi(strings.TrimPrefix(line, "id: ")); perr == nil {
				id = n
			}
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			switch event {
			case "progress":
				var ev modis.Event
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					return final, fmt.Errorf("serve: malformed progress event: %w", err)
				}
				// A resumed stream may replay the boundary event;
				// deliver only what is new.
				if id < 0 || id > *lastID {
					if fn != nil {
						fn(ev)
					}
					if id >= 0 {
						*lastID = id
					}
				}
			case "end":
				st := &JobStatus{}
				if err := json.Unmarshal([]byte(data), st); err != nil {
					return final, fmt.Errorf("serve: malformed end event: %w", err)
				}
				final = st
			}
			event, data, id = "", "", -1
		}
	}
	return final, sc.Err()
}

// Wait polls until the job reaches a terminal state and returns it.
func (c *Client) Wait(ctx context.Context, jobID string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, jobID)
		if err != nil {
			return nil, err
		}
		switch st.Status {
		case StatusDone, StatusFailed, StatusCancelled:
			return st, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
