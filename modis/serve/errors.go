package serve

// Typed error classification for the serving fleet. Every layer that
// talks to a node — serve.Client, the routing proxy, the chaos harness
// — needs the same answer to one question: is this failure worth
// retrying? The classification lives here, once, so a client retry, a
// proxy failover, and a test assertion cannot drift apart:
//
//   - retryable: the request may never have been processed, or the
//     rejection is explicitly temporary — transport failures
//     (connection refused/reset, unexpected EOF), 429 (throttled, with
//     Retry-After), 502 (node unreachable behind a proxy), 503
//     (draining or shedding, with Retry-After).
//   - terminal: retrying the same request cannot succeed — 400
//     (malformed/invalid), 404 (unknown workload or job), 504 (the
//     request's deadline budget is exhausted; a retry would have no
//     budget left), and context cancellation or deadline expiry on the
//     caller's side.
//
// Retries of POST /v1/jobs are only safe when the submission carries
// an idempotency key (see SubmitRequest.IdempotencyKey): a retried
// keyed submit returns the original job instead of running a second
// one, even across a node restart.

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/url"
	"time"
)

// ErrOverloaded marks an admission rejection from an overloaded
// scheduler: the bounded queue is full, or a queued job waited past the
// queue's max wait and was shed. Wire layers map it to 503 with a
// Retry-After header — shedding early and explicitly beats timing
// clients out at the back of the line. Match with errors.Is.
var ErrOverloaded = errors.New("serve: overloaded")

// APIError is a non-2xx daemon (or proxy) response, carrying the HTTP
// status the error traveled under and the server's Retry-After hint
// when one was sent. serve.Client returns it for every failed call, so
// callers can classify with Retryable and pace with RetryAfter.
type APIError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration // 0 when the response carried no hint
}

func (e *APIError) Error() string {
	return "serve: daemon returned " + itoa(e.Status) + ": " + e.Msg
}

// itoa avoids strconv in the hot error path; statuses are small.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	pos := len(b)
	for n > 0 && pos > 0 {
		pos--
		b[pos] = byte('0' + n%10)
		n /= 10
	}
	return string(b[pos:])
}

// RetryableStatus reports whether an HTTP status from the serving
// stack marks a temporary condition: 429 (admission throttled), 502
// (node unreachable), 503 (draining, shedding, or no alive owner).
// Everything else — including 504, the deadline-budget exhaustion
// signal — is terminal for the request that received it.
func RetryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable:
		return true
	}
	return false
}

// Retryable classifies an error from a Client call or a forwarded node
// request. Transport-level failures are retryable (the request may
// never have been processed — pair with an idempotency key before
// retrying a submit); APIErrors classify by status; the caller's own
// context cancellation or deadline is terminal.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return RetryableStatus(ae.Status)
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		// The transport failed underneath the request. If the failure
		// was the caller's context expiring mid-flight, it is still
		// terminal.
		return !errors.Is(ue.Err, context.Canceled) && !errors.Is(ue.Err, context.DeadlineExceeded)
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return true
	}
	return false
}

// RetryAfterHint extracts the server's Retry-After pacing hint from an
// error, when it carried one.
func RetryAfterHint(err error) (time.Duration, bool) {
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfter > 0 {
		return ae.RetryAfter, true
	}
	return 0, false
}

// RetryPolicy is the unified retry/backoff policy of the serving
// stack: capped exponential backoff between attempts, the server's
// Retry-After hint honored when larger, every wait bounded by the
// caller's context. The zero value disables retries (one attempt);
// DefaultRetryPolicy is the recommended client policy.
type RetryPolicy struct {
	// MaxAttempts is the total attempt count including the first
	// (<= 1 means no retries).
	MaxAttempts int
	// BaseBackoff is the wait after the first failure; it doubles per
	// attempt (default 50ms when MaxAttempts > 1).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 2s).
	MaxBackoff time.Duration
}

// DefaultRetryPolicy retries up to 4 attempts with 50ms→2s backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseBackoff: 50 * time.Millisecond, MaxBackoff: 2 * time.Second}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 1 {
		return p
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	return p
}

// backoff is the wait before attempt n+1 (n counts completed
// attempts, so n >= 1), the larger of the capped exponential and the
// server's hint.
func (p RetryPolicy) backoff(n int, hint time.Duration) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < n && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if hint > d {
		d = hint
	}
	return d
}

// Do runs op under the policy: retry while the error classifies
// retryable and attempts remain, waiting the backoff (or the server's
// Retry-After, whichever is larger) between attempts. The context
// bounds the whole loop — both op itself and the waits.
func (p RetryPolicy) Do(ctx context.Context, op func(context.Context) error) error {
	p = p.withDefaults()
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for n := 1; ; n++ {
		err = op(ctx)
		if err == nil || n >= attempts || !Retryable(err) {
			return err
		}
		hint, _ := RetryAfterHint(err)
		t := time.NewTimer(p.backoff(n, hint))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
}
