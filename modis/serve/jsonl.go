package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/modis"
)

// JSONLRequest is one line of the JSONL protocol — the scripting face
// of the daemon (modisd -jsonl): requests arrive one JSON object per
// line on stdin, responses leave one JSON object per line on stdout.
//
// Ops:
//
//	{"op":"submit","workload":"t3","algorithm":"bi","options":{...},"stream":true}
//	{"op":"status","job_id":"..."}
//	{"op":"cancel","job_id":"..."}
//	{"op":"wait","job_id":"..."}
//	{"op":"workloads"}  {"op":"algorithms"}
//
// A submit answers with an accepted line immediately; with "stream"
// set it is followed by one event line per progress event and, in all
// cases, a final result line when the job terminates. "wait" answers
// when the named job terminates. "tag" is echoed on every response to
// the request that carried it, so scripts can correlate.
type JSONLRequest struct {
	Op     string `json:"op"`
	Tag    string `json:"tag,omitempty"`
	JobID  string `json:"job_id,omitempty"`
	Stream bool   `json:"stream,omitempty"`
	SubmitRequest
}

// JSONLResponse is one output line of the JSONL protocol. Kind is
// "accepted", "event", "result", "status", "workloads", "algorithms",
// or "error".
type JSONLResponse struct {
	Kind  string       `json:"kind"`
	Tag   string       `json:"tag,omitempty"`
	JobID string       `json:"job_id,omitempty"`
	Error string       `json:"error,omitempty"`
	Event *modis.Event `json:"event,omitempty"`
	// Status carries job state for "accepted", "result", and "status"
	// lines (a result line's Status includes the report).
	Status *JobStatus `json:"status,omitempty"`
	Names  []string   `json:"names,omitempty"`
}

// jsonlWriter serializes response lines from concurrent job watchers.
type jsonlWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func (w *jsonlWriter) send(resp JSONLResponse) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.enc.Encode(resp)
}

// ServeJSONL runs the JSONL protocol over the given reader and writer
// until EOF, a read error, or ctx cancellation (jobs submitted here
// still live on the server's context). The final result line of every
// submitted job is written before ServeJSONL returns. Input is read on
// a side goroutine so cancellation — modisd's SIGTERM path — unblocks
// the loop even while the reader waits on an idle stdin; that reader
// goroutine may linger in its blocked read until the process exits or
// the input closes, which is fine for the shutdown paths that use it.
func (s *Server) ServeJSONL(ctx context.Context, in io.Reader, out io.Writer) error {
	w := &jsonlWriter{enc: json.NewEncoder(out)}
	var jobs sync.WaitGroup
	defer jobs.Wait()

	lines := make(chan []byte)
	readErr := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(in)
		sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
		for sc.Scan() {
			line := append([]byte(nil), sc.Bytes()...)
			select {
			case lines <- line:
			case <-ctx.Done():
				return
			}
		}
		readErr <- sc.Err()
		close(lines)
	}()

	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case line, ok := <-lines:
			if !ok {
				return <-readErr
			}
			if len(line) == 0 {
				continue
			}
			var req JSONLRequest
			if err := json.Unmarshal(line, &req); err != nil {
				w.send(JSONLResponse{Kind: "error", Error: fmt.Sprintf("serve: malformed request line: %v", err)})
				continue
			}
			s.serveJSONLOp(ctx, w, req, &jobs)
		}
	}
}

func (s *Server) serveJSONLOp(ctx context.Context, w *jsonlWriter, req JSONLRequest, jobs *sync.WaitGroup) {
	fail := func(err error) {
		w.send(JSONLResponse{Kind: "error", Tag: req.Tag, JobID: req.JobID, Error: err.Error()})
	}
	switch req.Op {
	case "submit":
		rec, _, err := s.Submit(req.SubmitRequest)
		if err != nil {
			fail(err)
			return
		}
		w.send(JSONLResponse{Kind: "accepted", Tag: req.Tag, JobID: rec.ID, Status: s.sched.statusOf(rec)})
		job := rec.Live()
		if job == nil {
			// A replayed key resolved to an archived job: it is already
			// terminal, so the result line follows immediately.
			w.send(JSONLResponse{Kind: "result", Tag: req.Tag, JobID: rec.ID, Status: s.sched.statusOf(rec)})
			return
		}
		jobs.Add(1)
		go func() {
			defer jobs.Done()
			if req.Stream {
				for ev := range job.EventsContext(ctx) {
					w.send(JSONLResponse{Kind: "event", Tag: req.Tag, JobID: job.ID(), Event: &ev})
				}
			}
			select {
			case <-job.Done():
			case <-ctx.Done():
				return
			}
			w.send(JSONLResponse{Kind: "result", Tag: req.Tag, JobID: job.ID(), Status: s.sched.statusOf(rec)})
		}()
	case "status":
		rec, ok := s.sched.Job(req.JobID)
		if !ok {
			fail(fmt.Errorf("serve: unknown job %q", req.JobID))
			return
		}
		w.send(JSONLResponse{Kind: "status", Tag: req.Tag, JobID: req.JobID, Status: s.sched.statusOf(rec)})
	case "cancel":
		rec, ok := s.sched.Job(req.JobID)
		if !ok {
			fail(fmt.Errorf("serve: unknown job %q", req.JobID))
			return
		}
		rec.Cancel() // archived records are already terminal
		w.send(JSONLResponse{Kind: "status", Tag: req.Tag, JobID: req.JobID, Status: s.sched.statusOf(rec)})
	case "wait":
		rec, ok := s.sched.Job(req.JobID)
		if !ok {
			fail(fmt.Errorf("serve: unknown job %q", req.JobID))
			return
		}
		jobs.Add(1)
		go func() {
			defer jobs.Done()
			select {
			case <-rec.Done(): // immediate for archived records
				w.send(JSONLResponse{Kind: "result", Tag: req.Tag, JobID: req.JobID, Status: s.sched.statusOf(rec)})
			case <-ctx.Done():
			}
		}()
	case "workloads":
		w.send(JSONLResponse{Kind: "workloads", Tag: req.Tag, Names: s.sched.WorkloadNames()})
	case "algorithms":
		w.send(JSONLResponse{Kind: "algorithms", Tag: req.Tag, Names: modis.Algorithms()})
	default:
		fail(fmt.Errorf("serve: unknown op %q", req.Op))
	}
}
