package serve

import (
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/modis"
)

// shardMetrics are one shard's serving counters, updated on the job
// completion path and read by /metrics scrapes.
type shardMetrics struct {
	lat        metrics.Reservoir
	done       atomic.Int64
	failed     atomic.Int64
	cancelled  atomic.Int64
	valuations atomic.Int64
	exactCalls atomic.Int64
	batched    atomic.Int64

	// Streaming counters, updated by AppendRows under the append gate.
	// tableVersion and rowCount double as the shard's race-free mirrors
	// of the space's version and row count — catalog/healthz/metrics
	// reads go through them, never through the space itself, which a
	// concurrent append may be mutating.
	appends         atomic.Int64
	rowsAppended    atomic.Int64
	memoInvalidated atomic.Int64
	tableVersion    atomic.Uint64
	rowCount        atomic.Int64
}

// nodeMetrics are the node-global counters — the across-shards view.
type nodeMetrics struct {
	lat metrics.Reservoir
}

// observeFinished folds a terminal job into its shard's and the
// node's metrics. Latency is submit-to-terminal wall time — what a
// client waiting on the job experienced, admission-queue wait
// included.
func (s *Scheduler) observeFinished(sh *shard, rec *JobRecord, job *modis.Job) {
	lat := time.Since(rec.Submitted)
	sh.met.lat.Observe(lat)
	s.met.lat.Observe(lat)
	status, _, rep := terminalState(job)
	switch status {
	case StatusDone:
		sh.met.done.Add(1)
	case StatusCancelled:
		sh.met.cancelled.Add(1)
	default:
		sh.met.failed.Add(1)
	}
	if rep != nil {
		sh.met.valuations.Add(int64(rep.Valuated))
		sh.met.exactCalls.Add(int64(rep.ExactCalls))
		if rep.Batched {
			sh.met.batched.Add(1)
		}
	}
}

// latQuantiles are the exported summary quantiles.
var latQuantiles = []float64{0.5, 0.9, 0.99}

// WriteMetrics renders the scheduler's full Prometheus text
// exposition — pool, admission, and per-shard serving series; see
// docs/serving.md for the reference. Shards are emitted in hash order
// so successive scrapes list series identically.
func (s *Scheduler) WriteMetrics(w *metrics.Writer) {
	ps := s.pool.Stats()
	w.Header("modis_pool_workers", "Fixed worker count of the daemon-global inference pool.", "gauge")
	w.Sample("modis_pool_workers", nil, float64(ps.Workers))
	w.Header("modis_pool_busy", "Pool workers executing an inference right now.", "gauge")
	w.Sample("modis_pool_busy", nil, float64(ps.Busy))
	w.Header("modis_pool_pending", "Inference tasks queued across all shards.", "gauge")
	w.Sample("modis_pool_pending", nil, float64(ps.Pending))

	s.mu.Lock()
	inflight := s.inflight
	queued := s.queued
	shards := make([]*shard, 0, len(s.shards))
	for _, sh := range s.shards {
		shards = append(shards, sh)
	}
	s.mu.Unlock()
	sort.Slice(shards, func(i, j int) bool { return shards[i].hash < shards[j].hash })

	w.Header("modis_jobs_inflight", "Jobs admitted and not yet terminal.", "gauge")
	w.Sample("modis_jobs_inflight", nil, float64(inflight))
	w.Header("modis_admission_queue_depth", "Admitted jobs waiting for an execution slot.", "gauge")
	w.Sample("modis_admission_queue_depth", nil, float64(queued))

	writeSummary(w, "modis_node_job_latency_seconds",
		"Submit-to-terminal job latency across all shards (window quantiles, lifetime count/sum).",
		nil, &s.met.lat)

	for _, sh := range shards {
		labels := []metrics.Label{
			{Name: "shard", Value: shortHash(sh.hash)},
			{Name: "workload", Value: workloadLabel(sh)},
		}
		jl := func(status string) []metrics.Label {
			return append(append([]metrics.Label(nil), labels...), metrics.Label{Name: "status", Value: status})
		}
		w.Header("modis_jobs_total", "Terminal jobs by shard and status.", "counter")
		w.Sample("modis_jobs_total", jl(StatusDone), float64(sh.met.done.Load()))
		w.Sample("modis_jobs_total", jl(StatusFailed), float64(sh.met.failed.Load()))
		w.Sample("modis_jobs_total", jl(StatusCancelled), float64(sh.met.cancelled.Load()))

		writeSummary(w, "modis_job_latency_seconds",
			"Submit-to-terminal job latency by shard (window quantiles, lifetime count/sum).",
			labels, &sh.met.lat)

		w.Header("modis_valuations_total", "States valuated by completed jobs.", "counter")
		w.Sample("modis_valuations_total", labels, float64(sh.met.valuations.Load()))
		w.Header("modis_exact_calls_total", "Exact model inferences paid by completed jobs.", "counter")
		w.Sample("modis_exact_calls_total", labels, float64(sh.met.exactCalls.Load()))
		w.Header("modis_batched_runs_total", "Completed runs that shared at least one pass with a peer.", "counter")
		w.Sample("modis_batched_runs_total", labels, float64(sh.met.batched.Load()))

		if sh.cfg.Tests != nil {
			ms := sh.cfg.Tests.MemoStats()
			w.Header("modis_memo_hits_total", "Plan-time valuations answered from the shard memo.", "counter")
			w.Sample("modis_memo_hits_total", labels, float64(ms.Hits))
			w.Header("modis_memo_misses_total", "Plan-time memo probes that found nothing.", "counter")
			w.Sample("modis_memo_misses_total", labels, float64(ms.Misses))
			w.Header("modis_memo_shared_total", "Inferences saved by single-flighting concurrent valuations.", "counter")
			w.Sample("modis_memo_shared_total", labels, float64(ms.Shared))
			w.Header("modis_memo_size", "Valuations held in the shard memo.", "gauge")
			w.Sample("modis_memo_size", labels, float64(sh.cfg.Tests.Len()))
		}

		w.Header("modis_appends_total", "Row-append batches committed to the shard.", "counter")
		w.Sample("modis_appends_total", labels, float64(sh.met.appends.Load()))
		w.Header("modis_rows_appended_total", "Rows appended to the shard's universal table.", "counter")
		w.Sample("modis_rows_appended_total", labels, float64(sh.met.rowsAppended.Load()))
		w.Header("modis_memo_invalidated_total", "Memoized valuations dropped by appends that changed their state's selected rows.", "counter")
		w.Sample("modis_memo_invalidated_total", labels, float64(sh.met.memoInvalidated.Load()))
		w.Header("modis_table_version", "The shard's current table version (append batches committed since build).", "gauge")
		w.Sample("modis_table_version", labels, float64(sh.met.tableVersion.Load()))
		w.Header("modis_table_rows", "The shard's universal-table row count.", "gauge")
		w.Sample("modis_table_rows", labels, float64(sh.met.rowCount.Load()))

		bs := sh.batch.stats()
		w.Header("modis_batch_windows_total", "Valuation windows submitted to the shard batcher.", "counter")
		w.Sample("modis_batch_windows_total", labels, float64(bs.windows))
		w.Header("modis_batch_merged_windows_total", "Windows that executed in a pass shared across runs.", "counter")
		w.Sample("modis_batch_merged_windows_total", labels, float64(bs.mergedWindows))
		w.Header("modis_batch_passes_total", "Executed exact-inference passes.", "counter")
		w.Sample("modis_batch_passes_total", labels, float64(bs.passes))
		w.Header("modis_batch_merged_passes_total", "Passes that merged windows of two or more runs.", "counter")
		w.Sample("modis_batch_merged_passes_total", labels, float64(bs.mergedPasses))

		qs := sh.queue.Stats()
		w.Header("modis_pool_tasks_total", "Inference tasks the shard completed on the pool.", "counter")
		w.Sample("modis_pool_tasks_total", labels, float64(qs.Done))
		w.Header("modis_pool_service_seconds_total", "Pool execution time consumed by the shard.", "counter")
		w.Sample("modis_pool_service_seconds_total", labels, qs.Service.Seconds())
		w.Header("modis_pool_wait_seconds_total", "Queue wait accumulated by the shard's started tasks.", "counter")
		w.Sample("modis_pool_wait_seconds_total", labels, qs.Wait.Seconds())
		w.Header("modis_pool_queue_depth", "The shard's inference tasks waiting in its pool queue.", "gauge")
		w.Sample("modis_pool_queue_depth", labels, float64(qs.Pending))
		w.Header("modis_pool_inflight", "The shard's inference tasks executing right now.", "gauge")
		w.Sample("modis_pool_inflight", labels, float64(qs.Inflight))
	}
}

// writeSummary emits a Prometheus summary: window quantiles plus the
// lifetime _count and _sum.
func writeSummary(w *metrics.Writer, name, help string, labels []metrics.Label, r *metrics.Reservoir) {
	w.Header(name, help, "summary")
	qs := r.Quantiles(latQuantiles...)
	for i, q := range latQuantiles {
		ql := append(append([]metrics.Label(nil), labels...),
			metrics.Label{Name: "quantile", Value: strconv.FormatFloat(q, 'g', -1, 64)})
		w.Sample(name, ql, qs[i])
	}
	w.Sample(name+"_sum", labels, r.Sum())
	w.Sample(name+"_count", labels, float64(r.Count()))
}

// shortHash is the 12-character shard label, matching the Short()
// form descriptors print elsewhere.
func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// workloadLabel names a shard by its catalog names (registration
// order is canonicalized to sorted).
func workloadLabel(sh *shard) string {
	if len(sh.names) == 1 {
		return sh.names[0]
	}
	out := ""
	for i, n := range sh.names {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}
