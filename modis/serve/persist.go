package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/fst"
	"repro/internal/skyline"
	"repro/internal/table"
	"repro/internal/wal"
	"repro/modis"
)

// PersistOptions tune the daemon's crash-safe state directory.
type PersistOptions struct {
	// Dir is the state directory root. Every workload shard owns one
	// subdirectory named by its descriptor hash:
	//
	//	<dir>/<hash>/memo/   snapshot+log of the shard's memoized Test records
	//	<dir>/<hash>/jobs/   snapshot+log of the shard's job ledger
	//	<dir>/<hash>/rows/   log of appended row batches, one record per table version
	//
	// The layout is the shard-migration unit: copying <dir>/<hash>/ to
	// another node's state dir moves the shard's warm memo and job
	// history with it, because the hash — not the node, not the catalog
	// name — is the identity everything is keyed by.
	Dir string
	// CommitInterval is the write-behind committers' max latency before
	// a pending record is flushed (default 100ms).
	CommitInterval time.Duration
	// CommitThreshold is the batch size that flushes immediately
	// (default 64).
	CommitThreshold int
	// CompactBytes triggers open-time log compaction once a store's log
	// outgrows it (default 8MB). Compaction never runs mid-serve.
	CompactBytes int64
	// FS overrides the filesystem — the fault-injection seam. Nil means
	// the real one.
	FS wal.FS
}

func (o *PersistOptions) withDefaults() PersistOptions {
	out := *o
	if out.CommitInterval <= 0 {
		out.CommitInterval = 100 * time.Millisecond
	}
	if out.CommitThreshold <= 0 {
		out.CommitThreshold = 64
	}
	if out.CompactBytes <= 0 {
		out.CompactBytes = 8 << 20
	}
	if out.FS == nil {
		out.FS = wal.OsFS{}
	}
	return out
}

// PersistenceHealth is the healthz view of the state directory: one
// committer Health per store, plus open-time failures. Degraded
// persistence never fails a run — it only shows up here.
type PersistenceHealth struct {
	Enabled bool   `json:"enabled"`
	Healthy bool   `json:"healthy"`
	Dir     string `json:"dir,omitempty"`
	// Stores maps "<hash>/memo", "<hash>/jobs", and "<hash>/rows" to
	// their condition.
	Stores map[string]wal.Health `json:"stores,omitempty"`
	// OpenErrors lists stores that failed to open and run in-memory
	// only.
	OpenErrors map[string]string `json:"open_errors,omitempty"`
}

// RecoveredJob is one job reconstructed from a shard's ledger during a
// warm start.
type RecoveredJob struct {
	ID        string
	Workload  string
	Algorithm string
	IdemKey   string
	Submitted time.Time
	// Finished reports whether a terminal entry was recovered; an
	// unfinished job was lost to the crash.
	Finished  bool
	Status    string
	Error     string
	HasReport bool
}

// Persistence owns the daemon's durable state: per shard (descriptor
// hash), one memo store and one job ledger, each drained by a
// write-behind committer. Every failure mode is non-fatal by
// construction — a store that cannot open runs in-memory only, a disk
// that stops accepting writes turns the committer unhealthy and is
// retried with backoff — and all of it is visible through Health.
type Persistence struct {
	opts PersistOptions

	mu      sync.Mutex
	memos   map[string]*persistStore // hash → memo store
	ledgers map[string]*persistStore // hash → job ledger
	rows    map[string]*persistStore // hash → appended-rows log
	// reportRefs locates each finished job's ledger record for
	// positional report reads after the in-memory handle is dropped.
	reportRefs map[string]reportRef
	// reportCache is a tiny LRU over decoded reports of archived jobs.
	reportCache map[string]*modis.Report
	reportOrder []string
	openErrs    map[string]string
	closed      bool
}

// reportRef pins a finished job's report to its shard's ledger.
type reportRef struct {
	hash string
	ref  wal.RecordRef
}

// reportCacheCap bounds the decoded-report LRU.
const reportCacheCap = 32

type persistStore struct {
	store *wal.Store
	com   *wal.Committer
}

// OpenPersistence prepares the state directory. It only fails when
// dir cannot even be created — store-level failures are recorded and
// the affected store degrades to in-memory.
func OpenPersistence(opts PersistOptions) (*Persistence, error) {
	p := &Persistence{
		opts:        opts.withDefaults(),
		memos:       map[string]*persistStore{},
		ledgers:     map[string]*persistStore{},
		rows:        map[string]*persistStore{},
		reportRefs:  map[string]reportRef{},
		reportCache: map[string]*modis.Report{},
		openErrs:    map[string]string{},
	}
	if err := p.opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: state dir %s: %w", opts.Dir, err)
	}
	return p, nil
}

// sanitizeName maps a shard hash (or any caller-supplied key) onto a
// filesystem-safe directory segment. Descriptor hashes are already
// plain hex; this guards the layout against foreign keys.
func sanitizeName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// shardDir is the shard's private corner of the state directory.
func (p *Persistence) shardDir(hash string) string {
	return p.opts.Dir + "/" + sanitizeName(hash)
}

func (p *Persistence) committerOptions() wal.CommitterOptions {
	return wal.CommitterOptions{
		Interval:  p.opts.CommitInterval,
		Threshold: p.opts.CommitThreshold,
	}
}

// AttachMemo opens (recovering if present) the memo store of the
// shard, replays every persisted test into ts.Put in logged order —
// reconstructing the valuation order, correlation columns, and
// diversification normalizer exactly — and installs a sink so every
// future valuation is persisted write-behind. accept (nil = accept
// all) screens each decoded record before it is replayed: the
// versioned-memo predicate drops valuations whose recorded table
// version no longer matches the shard's replayed row history. A store
// that fails to open leaves ts purely in-memory and records the
// failure in Health; the returned error is informational, never fatal
// to serving.
func (p *Persistence) AttachMemo(hash string, ts *fst.TestSet, accept func(*fst.Test) bool) error {
	dir := p.shardDir(hash) + "/memo"
	var replayed int
	store, err := wal.OpenStore(p.opts.FS, dir, func(ref wal.RecordRef, payload []byte) error {
		t, derr := decodeTest(payload)
		if derr != nil {
			// A record that framed correctly but decodes badly is from
			// a future/foreign format: skip it rather than refuse to
			// start.
			return nil
		}
		if accept != nil && !accept(t) {
			return nil
		}
		ts.Put(t)
		replayed++
		return nil
	})
	if err != nil {
		p.mu.Lock()
		p.openErrs[hash+"/memo"] = err.Error()
		p.mu.Unlock()
		return fmt.Errorf("serve: memo store %.12s degraded to in-memory: %w", hash, err)
	}

	// Open-time compaction: fold the log into a snapshot once it has
	// outgrown the threshold. The memo state is exactly ts's valuation
	// order, so the snapshot is written from memory.
	if store.LogSize() > p.opts.CompactBytes {
		tests := ts.All()
		if cerr := store.Compact(func(_ func(wal.RecordRef) ([]byte, error), write func([]byte) (wal.RecordRef, error)) error {
			for _, t := range tests {
				if _, werr := write(encodeTest(t)); werr != nil {
					return werr
				}
			}
			return nil
		}); cerr != nil {
			// Non-fatal: keep serving on the uncompacted generation.
			p.mu.Lock()
			p.openErrs[hash+"/memo/compact"] = cerr.Error()
			p.mu.Unlock()
		}
	}

	com := wal.NewStoreCommitter(p.committerOptions(), store)
	p.mu.Lock()
	p.memos[hash] = &persistStore{store: store, com: com}
	p.mu.Unlock()
	ts.SetSink(func(t *fst.Test) {
		com.Enqueue(encodeTest(t), nil)
	})
	return nil
}

// ledgerEntry is one JSON record of a shard's job ledger. Kind
// "submitted" marks acceptance, "finished" the terminal state
// (carrying the report of a done job). Entries for one job converge by
// overwrite — replay keeps the latest per id — so duplicated records
// from retried batches are harmless.
type ledgerEntry struct {
	Kind      string        `json:"kind"`
	ID        string        `json:"id"`
	Workload  string        `json:"workload,omitempty"`
	Algorithm string        `json:"algorithm,omitempty"`
	IdemKey   string        `json:"idem_key,omitempty"`
	Submitted time.Time     `json:"submitted,omitempty"`
	Status    string        `json:"status,omitempty"`
	Error     string        `json:"error,omitempty"`
	Report    *modis.Report `json:"report,omitempty"`
}

// RecoverShard opens the shard's job ledger, replays it, and returns
// the jobs of the previous incarnation in submission order. Open
// failure degrades the ledger to in-memory (recorded in Health) and
// returns no recovered jobs. Recovering the same shard twice is a
// no-op the second time.
func (p *Persistence) RecoverShard(hash string) []RecoveredJob {
	p.mu.Lock()
	if _, dup := p.ledgers[hash]; dup {
		p.mu.Unlock()
		return nil
	}
	p.mu.Unlock()

	dir := p.shardDir(hash) + "/jobs"
	var order []string
	recovered := map[string]*RecoveredJob{}
	refs := map[string]wal.RecordRef{}
	store, err := wal.OpenStore(p.opts.FS, dir, func(ref wal.RecordRef, payload []byte) error {
		var e ledgerEntry
		if derr := json.Unmarshal(payload, &e); derr != nil || e.ID == "" {
			return nil // foreign/corrupt-format record: skip, don't refuse
		}
		r, ok := recovered[e.ID]
		if !ok {
			r = &RecoveredJob{ID: e.ID}
			recovered[e.ID] = r
			order = append(order, e.ID)
		}
		if e.IdemKey != "" {
			r.IdemKey = e.IdemKey
		}
		switch e.Kind {
		case "submitted":
			r.Workload, r.Algorithm, r.Submitted = e.Workload, e.Algorithm, e.Submitted
		case "finished":
			r.Finished = true
			r.Status, r.Error = e.Status, e.Error
			if e.Workload != "" {
				r.Workload, r.Algorithm, r.Submitted = e.Workload, e.Algorithm, e.Submitted
			}
			r.HasReport = e.Report != nil
			if e.Report != nil {
				refs[e.ID] = ref
			}
		}
		return nil
	})
	if err != nil {
		p.mu.Lock()
		p.openErrs[hash+"/jobs"] = err.Error()
		p.mu.Unlock()
		return nil
	}

	// Open-time compaction: one finished entry per job replaces its
	// whole history.
	if store.LogSize() > p.opts.CompactBytes {
		newRefs := map[string]wal.RecordRef{}
		if cerr := store.Compact(func(read func(wal.RecordRef) ([]byte, error), write func([]byte) (wal.RecordRef, error)) error {
			for _, id := range order {
				r := recovered[id]
				e := ledgerEntry{
					Kind: "finished", ID: id,
					Workload: r.Workload, Algorithm: r.Algorithm, IdemKey: r.IdemKey, Submitted: r.Submitted,
					Status: r.Status, Error: r.Error,
				}
				if !r.Finished {
					e.Kind = "submitted"
					e.Status, e.Error = "", ""
				}
				if ref, ok := refs[id]; ok {
					payload, rerr := read(ref)
					if rerr == nil {
						var full ledgerEntry
						if json.Unmarshal(payload, &full) == nil {
							e.Report = full.Report
						}
					}
				}
				blob, merr := json.Marshal(e)
				if merr != nil {
					return merr
				}
				nref, werr := write(blob)
				if werr != nil {
					return werr
				}
				if e.Report != nil {
					newRefs[id] = nref
				}
			}
			return nil
		}); cerr != nil {
			p.mu.Lock()
			p.openErrs[hash+"/jobs/compact"] = cerr.Error()
			p.mu.Unlock()
		} else {
			refs = newRefs
		}
	}

	com := wal.NewStoreCommitter(p.committerOptions(), store)
	p.mu.Lock()
	p.ledgers[hash] = &persistStore{store: store, com: com}
	for id, ref := range refs {
		p.reportRefs[id] = reportRef{hash: hash, ref: ref}
	}
	p.mu.Unlock()

	out := make([]RecoveredJob, 0, len(order))
	for _, id := range order {
		out = append(out, *recovered[id])
	}
	return out
}

// rowsEntry is one JSON record of a shard's appended-rows log: the
// table version the batch committed as, and the batch itself in wire
// form (one JSON array per row, universal-schema order). The log is
// never compacted: per-version batch boundaries are the row-count
// history the versioned memo validates old valuations against.
type rowsEntry struct {
	Version uint64            `json:"version"`
	Rows    []json.RawMessage `json:"rows"`
}

// ReplayRows opens the shard's appended-rows log and replays every
// persisted batch through cfg.Append in logged order, rebuilding the
// table — and the version→row-count history — exactly as the previous
// incarnation left it. Call before AttachMemo: the memo's replay
// predicate validates each persisted valuation against the row history
// this replay reconstructs. Open failure degrades appends to in-memory
// (recorded in Health); a record that fails to decode or to re-apply
// is skipped and recorded, never fatal. Replaying the same shard twice
// is a no-op the second time.
func (p *Persistence) ReplayRows(hash string, cfg *fst.Config) error {
	p.mu.Lock()
	if _, dup := p.rows[hash]; dup {
		p.mu.Unlock()
		return nil
	}
	p.mu.Unlock()

	dir := p.shardDir(hash) + "/rows"
	var schema table.Schema
	if cfg.Space != nil {
		schema = cfg.Space.Universal.Schema
	}
	store, err := wal.OpenStore(p.opts.FS, dir, func(_ wal.RecordRef, payload []byte) error {
		var e rowsEntry
		if json.Unmarshal(payload, &e) != nil || len(e.Rows) == 0 || schema == nil {
			return nil // foreign/corrupt-format record: skip, don't refuse
		}
		rows := make([]table.Row, 0, len(e.Rows))
		for _, raw := range e.Rows {
			row, derr := decodeWireRow(schema, raw)
			if derr != nil {
				return nil
			}
			rows = append(rows, row)
		}
		if _, _, aerr := cfg.Append(rows); aerr != nil {
			// A batch that applied cleanly live but not on replay (e.g.
			// a foreign state dir): record it; the memo predicate will
			// reject the valuations of the versions that never landed.
			p.mu.Lock()
			p.openErrs[hash+"/rows/replay"] = aerr.Error()
			p.mu.Unlock()
		}
		return nil
	})
	if err != nil {
		p.mu.Lock()
		p.openErrs[hash+"/rows"] = err.Error()
		p.mu.Unlock()
		return fmt.Errorf("serve: rows store %.12s degraded to in-memory: %w", hash, err)
	}
	com := wal.NewStoreCommitter(p.committerOptions(), store)
	p.mu.Lock()
	p.rows[hash] = &persistStore{store: store, com: com}
	p.mu.Unlock()
	return nil
}

// AppendRows spills one committed append batch to the shard's rows log
// write-behind, keyed by the table version it committed as.
func (p *Persistence) AppendRows(hash string, version uint64, rows []table.Row) {
	p.mu.Lock()
	st := p.rows[hash]
	p.mu.Unlock()
	if st == nil {
		return
	}
	wire, err := encodeWireRows(rows)
	if err != nil {
		return
	}
	blob, err := json.Marshal(rowsEntry{Version: version, Rows: wire})
	if err != nil {
		return
	}
	st.com.Enqueue(blob, nil)
}

// appendLedger enqueues one entry on the shard's ledger write-behind.
// onDurable (may be nil) runs once the entry is synced to disk.
func (p *Persistence) appendLedger(hash string, e ledgerEntry, onDurable func(ref wal.RecordRef)) {
	p.mu.Lock()
	l := p.ledgers[hash]
	p.mu.Unlock()
	if l == nil {
		return
	}
	blob, err := json.Marshal(e)
	if err != nil {
		return
	}
	l.com.Enqueue(blob, onDurable)
}

// AppendSubmitted records a job acceptance on its shard's ledger. The
// idempotency key (may be empty) is part of the acceptance: a warm
// restart re-registers it so a retried keyed submit replays the
// recovered job instead of re-running the search.
func (p *Persistence) AppendSubmitted(hash, id, workload, algorithm, idemKey string, submitted time.Time) {
	p.appendLedger(hash, ledgerEntry{
		Kind: "submitted", ID: id,
		Workload: workload, Algorithm: algorithm, IdemKey: idemKey, Submitted: submitted,
	}, nil)
}

// AppendFinished records a job's terminal state (and report, for done
// jobs) on its shard's ledger. onDurable (may be nil) runs once the
// record is on disk — the scheduler's cue that the in-memory handle
// may be dropped.
func (p *Persistence) AppendFinished(hash, id, workload, algorithm, idemKey string, submitted time.Time, status, errMsg string, rep *modis.Report, onDurable func()) {
	p.appendLedger(hash, ledgerEntry{
		Kind: "finished", ID: id,
		Workload: workload, Algorithm: algorithm, IdemKey: idemKey, Submitted: submitted,
		Status: status, Error: errMsg, Report: rep,
	}, func(ref wal.RecordRef) {
		if rep != nil {
			p.mu.Lock()
			p.reportRefs[id] = reportRef{hash: hash, ref: ref}
			p.mu.Unlock()
		}
		if onDurable != nil {
			onDurable()
		}
	})
}

// ReadReport fetches an archived job's report back from its shard's
// ledger (through a small LRU). A missing or unreadable record reports
// false — degraded disks degrade to report-less status, never errors.
func (p *Persistence) ReadReport(id string) (*modis.Report, bool) {
	p.mu.Lock()
	if rep, ok := p.reportCache[id]; ok {
		p.mu.Unlock()
		return rep, true
	}
	rref, ok := p.reportRefs[id]
	var l *persistStore
	if ok {
		l = p.ledgers[rref.hash]
	}
	p.mu.Unlock()
	if !ok || l == nil {
		return nil, false
	}
	payload, err := l.store.ReadRecord(rref.ref)
	if err != nil {
		return nil, false
	}
	var e ledgerEntry
	if json.Unmarshal(payload, &e) != nil || e.Report == nil {
		return nil, false
	}
	p.mu.Lock()
	if len(p.reportOrder) >= reportCacheCap {
		evict := p.reportOrder[0]
		p.reportOrder = p.reportOrder[1:]
		delete(p.reportCache, evict)
	}
	if _, dup := p.reportCache[id]; !dup {
		p.reportCache[id] = e.Report
		p.reportOrder = append(p.reportOrder, id)
	}
	p.mu.Unlock()
	return e.Report, true
}

// Health aggregates every store's condition.
func (p *Persistence) Health() PersistenceHealth {
	p.mu.Lock()
	defer p.mu.Unlock()
	h := PersistenceHealth{
		Enabled: true,
		Healthy: true,
		Dir:     p.opts.Dir,
		Stores:  map[string]wal.Health{},
	}
	for hash, ps := range p.memos {
		sh := ps.com.Health()
		h.Stores[hash+"/memo"] = sh
		if !sh.Healthy {
			h.Healthy = false
		}
	}
	for hash, ps := range p.ledgers {
		sh := ps.com.Health()
		h.Stores[hash+"/jobs"] = sh
		if !sh.Healthy {
			h.Healthy = false
		}
	}
	for hash, ps := range p.rows {
		sh := ps.com.Health()
		h.Stores[hash+"/rows"] = sh
		if !sh.Healthy {
			h.Healthy = false
		}
	}
	if len(p.openErrs) > 0 {
		h.Healthy = false
		h.OpenErrors = map[string]string{}
		for k, v := range p.openErrs {
			h.OpenErrors[k] = v
		}
	}
	return h
}

// allStores snapshots every open store under the lock.
func (p *Persistence) allStores() []*persistStore {
	stores := make([]*persistStore, 0, len(p.memos)+len(p.ledgers)+len(p.rows))
	for _, ps := range p.memos {
		stores = append(stores, ps)
	}
	for _, ps := range p.ledgers {
		stores = append(stores, ps)
	}
	for _, ps := range p.rows {
		stores = append(stores, ps)
	}
	return stores
}

// Flush forces every committer's backlog out now — the test hook for
// "everything enqueued so far is on disk". Reports whether all stores
// fully drained.
func (p *Persistence) Flush() bool {
	p.mu.Lock()
	stores := p.allStores()
	p.mu.Unlock()
	drained := true
	for _, ps := range stores {
		if !ps.com.Flush() {
			drained = false
		}
	}
	return drained
}

// Close makes a final flush attempt and closes every store. Safe to
// call more than once.
func (p *Persistence) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	stores := p.allStores()
	p.mu.Unlock()
	for _, ps := range stores {
		ps.com.Close()
		ps.store.Close()
	}
}

// encodeTest frames one memoized test for the wal: key, perf vector,
// feature vector, then the table version the valuation is current for,
// all little-endian, floats as raw IEEE-754 bits so recovery is
// bit-exact — the determinism contract depends on it.
func encodeTest(t *fst.Test) []byte {
	n := 8 + 4 + 8*len(t.Perf) + 4 + 8*len(t.Features) + 8
	buf := make([]byte, n)
	off := 0
	binary.LittleEndian.PutUint64(buf[off:], uint64(t.Key))
	off += 8
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(t.Perf)))
	off += 4
	for _, v := range t.Perf {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(t.Features)))
	off += 4
	for _, v := range t.Features {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	binary.LittleEndian.PutUint64(buf[off:], t.Version)
	return buf
}

// decodeTest is encodeTest's inverse. Records written before versioned
// memos end exactly at the feature vector; they decode as version 0 —
// a valuation of the table as originally built.
func decodeTest(buf []byte) (*fst.Test, error) {
	if len(buf) < 12 {
		return nil, fmt.Errorf("serve: memo record too short (%d bytes)", len(buf))
	}
	off := 0
	key := binary.LittleEndian.Uint64(buf[off:])
	off += 8
	nPerf := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if nPerf < 0 || off+8*nPerf+4 > len(buf) {
		return nil, fmt.Errorf("serve: memo record perf length %d out of bounds", nPerf)
	}
	perf := make(skyline.Vector, nPerf)
	for i := range perf {
		perf[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	nFeat := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if nFeat < 0 || off+8*nFeat > len(buf) {
		return nil, fmt.Errorf("serve: memo record feature length %d out of bounds", nFeat)
	}
	var feats []float64
	if nFeat > 0 {
		feats = make([]float64, nFeat)
		for i := range feats {
			feats[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	var version uint64
	switch len(buf) - off {
	case 0:
		// Pre-versioning record: the table as originally built.
	case 8:
		version = binary.LittleEndian.Uint64(buf[off:])
	default:
		return nil, fmt.Errorf("serve: memo record has %d trailing bytes", len(buf)-off)
	}
	return &fst.Test{Key: fst.StateKey(key), Perf: perf, Features: feats, Version: version}, nil
}
