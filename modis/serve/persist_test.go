package serve_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fst"
	"repro/internal/wal"
	"repro/modis/serve"
)

// newPersistShapeConfig is newShapeConfig with the test set
// pre-initialized, so direct AttachMemo calls (outside Register, which
// initializes it itself) have a set to replay into.
func newPersistShapeConfig(tb testing.TB) *fst.Config {
	tb.Helper()
	cfg := newShapeConfig(tb, 0)
	cfg.Tests = fst.NewTestSet()
	return cfg
}

// shapeHash is the shape workload's descriptor hash — the shard
// identity its state directory is keyed by. Every shape config is
// structurally identical, so every incarnation lands on the same hash;
// that is the cross-restart contract these tests lean on.
func shapeHash(tb testing.TB) string {
	tb.Helper()
	return describeShape(tb, newShapeConfig(tb, 0)).Hash()
}

// openPersist opens a persistence rooted at dir with test-friendly
// commit knobs (tiny interval so write-behind lag never dominates a
// test) over the given filesystem (nil = the real one).
func openPersist(tb testing.TB, dir string, fsys wal.FS) *serve.Persistence {
	tb.Helper()
	p, err := serve.OpenPersistence(serve.PersistOptions{
		Dir:            dir,
		CommitInterval: 5 * time.Millisecond,
		FS:             fsys,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// getJSON fetches url and decodes the JSON body into out.
func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// waitUntil polls cond to true within a deadline.
func waitUntil(tb testing.TB, d time.Duration, what string, cond func() bool) {
	tb.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	tb.Fatalf("timed out waiting for %s", what)
}

// TestColdWarmDeterminism is the restart contract end to end: a cold
// incarnation runs every algorithm on a fresh workload and persists its
// memo; a warm incarnation — fresh config, same state directory —
// recovers the memoized valuations in the exact order they were made,
// reproduces every skyline byte for byte, and performs zero exact
// inferences doing so. Registration alone does the recovery: the memo
// lives under the shard's descriptor hash, and both incarnations derive
// the same hash from structurally identical configs.
func TestColdWarmDeterminism(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	// Cold incarnation.
	cfgA := newPersistShapeConfig(t)
	pA := openPersist(t, dir, nil)
	schedA := serve.NewScheduler(serve.SchedulerOptions{Persist: pA})
	registerShape(t, schedA, cfgA)
	coldSkyline := map[string]string{}
	for _, algo := range allAlgorithms() {
		job, err := schedA.Submit(ctx, "shape", algo, runOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		rep := mustResult(t, job)
		if rep.ExactCalls == 0 && algo == allAlgorithms()[0] {
			t.Fatalf("cold %s run made no exact inferences; the warm assertion below would be vacuous", algo)
		}
		coldSkyline[algo] = skylineJSON(t, rep)
	}
	coldTests := cfgA.Tests.All()
	if len(coldTests) == 0 {
		t.Fatal("cold incarnation memoized nothing")
	}
	if !pA.Flush() {
		t.Fatal("cold flush did not drain")
	}
	pA.Close()

	// Warm incarnation: fresh config (own empty test set), same state
	// directory. Register recovers the shard's memo before serving.
	cfgB := newPersistShapeConfig(t)
	pB := openPersist(t, dir, nil)
	defer pB.Close()
	schedB := serve.NewScheduler(serve.SchedulerOptions{Persist: pB})
	registerShape(t, schedB, cfgB)
	warmTests := cfgB.Tests.All()
	if len(warmTests) != len(coldTests) {
		t.Fatalf("recovered %d memoized valuations, cold made %d", len(warmTests), len(coldTests))
	}
	for i := range coldTests {
		if warmTests[i].Key != coldTests[i].Key {
			t.Fatalf("valuation order diverged at %d: recovered key %d, cold key %d", i, warmTests[i].Key, coldTests[i].Key)
		}
		if len(warmTests[i].Perf) != len(coldTests[i].Perf) {
			t.Fatalf("valuation %d: perf arity diverged", i)
		}
		for j := range coldTests[i].Perf {
			if warmTests[i].Perf[j] != coldTests[i].Perf[j] {
				t.Fatalf("valuation %d measure %d: recovered %v, cold %v (not bit-exact)", i, j, warmTests[i].Perf[j], coldTests[i].Perf[j])
			}
		}
	}

	for _, algo := range allAlgorithms() {
		job, err := schedB.Submit(ctx, "shape", algo, runOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		rep := mustResult(t, job)
		if got := skylineJSON(t, rep); got != coldSkyline[algo] {
			t.Fatalf("warm %s skyline diverged:\ncold %s\nwarm %s", algo, coldSkyline[algo], got)
		}
		if rep.ExactCalls != 0 {
			t.Fatalf("warm %s run made %d exact inferences, want 0 (everything was memoized)", algo, rep.ExactCalls)
		}
	}
	if n := cfgB.Tests.Len(); n != len(coldTests) {
		t.Fatalf("warm runs grew the memo to %d entries, want %d (no new valuations)", n, len(coldTests))
	}
}

// memoLogPath locates the single memo log file of the shard.
func memoLogPath(tb testing.TB, dir, hash string) string {
	tb.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, hash, "memo", "log-*.wal"))
	if err != nil || len(matches) != 1 {
		tb.Fatalf("memo log files: %v (err %v), want exactly 1", matches, err)
	}
	return matches[0]
}

// TestMemoRecoveryTolerantOfCorruption takes one persisted memo through
// the SIGKILL-shaped corruption ladder — garbage appended past the last
// record, a torn tail cutting the final record, a bit flip in the
// middle — and recovery must never refuse to start and never load a
// corrupt record: each reopen yields a clean prefix and a run that
// still reproduces the cold skyline.
func TestMemoRecoveryTolerantOfCorruption(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	cfgA := newPersistShapeConfig(t)
	pA := openPersist(t, dir, nil)
	schedA := serve.NewScheduler(serve.SchedulerOptions{Persist: pA})
	registerShape(t, schedA, cfgA)
	job, err := schedA.Submit(ctx, "shape", "bi", runOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	coldSky := skylineJSON(t, mustResult(t, job))
	coldLen := cfgA.Tests.Len()
	if !pA.Flush() {
		t.Fatal("cold flush did not drain")
	}
	pA.Close()
	logPath := memoLogPath(t, dir, shapeHash(t))

	reopenAndRun := func(name string) (recovered int) {
		t.Helper()
		cfg := newPersistShapeConfig(t)
		p := openPersist(t, dir, nil)
		defer p.Close()
		sched := serve.NewScheduler(serve.SchedulerOptions{Persist: p})
		registerShape(t, sched, cfg)
		recovered = cfg.Tests.Len()
		job, err := sched.Submit(ctx, "shape", "bi", runOpts()...)
		if err != nil {
			t.Fatalf("%s: submit: %v", name, err)
		}
		if got := skylineJSON(t, mustResult(t, job)); got != coldSky {
			t.Fatalf("%s: skyline diverged after recovery:\ncold %s\ngot  %s", name, coldSky, got)
		}
		if !p.Flush() {
			t.Fatalf("%s: flush did not drain", name)
		}
		return recovered
	}

	// Garbage appended past the last record: the tail is truncated, every
	// real record survives.
	blob, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, append(append([]byte(nil), blob...), 0xAB, 0xCD, 0xEF, 0x01, 0x23, 0x45, 0x67, 0x89), 0o644); err != nil {
		t.Fatal(err)
	}
	if n := reopenAndRun("garbage tail"); n != coldLen {
		t.Fatalf("garbage tail: recovered %d records, want %d", n, coldLen)
	}

	// Torn tail: the final record is cut mid-payload (what SIGKILL
	// mid-write leaves). Recovery keeps the prefix; the rerun revaluates
	// the lost state and re-persists it.
	info, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	if n := reopenAndRun("torn tail"); n != coldLen-1 {
		t.Fatalf("torn tail: recovered %d records, want %d", n, coldLen-1)
	}

	// Bit flip mid-file: the damaged record fails its checksum; recovery
	// keeps the records before it and never loads the corrupt one.
	blob, err = os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x40
	if err := os.WriteFile(logPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if n := reopenAndRun("bit flip"); n >= coldLen {
		t.Fatalf("bit flip: recovered %d records, want fewer than %d", n, coldLen)
	}
}

// TestPersistenceFaultsDegradeGracefully breaks the disk under a live
// run — fsync failures first, then ENOSPC — and asserts the graceful-
// degradation contract: the run itself never fails, healthz turns
// degraded, and once the disk heals everything retried lands so the
// next incarnation recovers the full memo.
func TestPersistenceFaultsDegradeGracefully(t *testing.T) {
	for _, tc := range []struct {
		name   string
		arm    func(ffs *wal.FaultFS)
		disarm func(ffs *wal.FaultFS)
	}{
		{
			name:   "fsync failure",
			arm:    func(ffs *wal.FaultFS) { ffs.SetSyncErr(errors.New("injected: fsync lost")) },
			disarm: func(ffs *wal.FaultFS) { ffs.SetSyncErr(nil) },
		},
		{
			name:   "enospc",
			arm:    func(ffs *wal.FaultFS) { ffs.SetWriteBudget(0) },
			disarm: func(ffs *wal.FaultFS) { ffs.SetWriteBudget(-1) },
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ctx := context.Background()
			ffs := wal.NewFaultFS(wal.OsFS{})

			cfg := newPersistShapeConfig(t)
			p := openPersist(t, dir, ffs)
			sched := serve.NewScheduler(serve.SchedulerOptions{Persist: p})
			registerShape(t, sched, cfg)
			srv := httptest.NewServer(serve.NewServer(sched, serve.ServerOptions{}))
			defer srv.Close()

			// Break the disk, then run: the search must finish as if
			// nothing happened.
			tc.arm(ffs)
			job, err := sched.Submit(ctx, "shape", "bi", runOpts()...)
			if err != nil {
				t.Fatal(err)
			}
			rep := mustResult(t, job)
			if len(rep.Skyline) == 0 {
				t.Fatal("run under injected disk fault produced no skyline")
			}

			// The failure surfaces through healthz, not through the run.
			waitUntil(t, 5*time.Second, "degraded health", func() bool {
				return !p.Health().Healthy
			})
			var hr serve.HealthResponse
			if err := getJSON(srv.URL+"/healthz", &hr); err != nil {
				t.Fatal(err)
			}
			if hr.Status != "degraded" || hr.Persistence == nil || hr.Persistence.Healthy {
				t.Fatalf("healthz under fault = %+v, want degraded", hr)
			}

			// Heal: the retained backlog drains and health recovers.
			tc.disarm(ffs)
			waitUntil(t, 5*time.Second, "healed flush", func() bool {
				return p.Flush() && p.Health().Healthy
			})
			if err := getJSON(srv.URL+"/healthz", &hr); err != nil {
				t.Fatal(err)
			}
			if hr.Status != "ok" {
				t.Fatalf("healthz after heal = %q, want ok", hr.Status)
			}
			memoLen := cfg.Tests.Len()
			p.Close()

			// Nothing enqueued during the outage was lost: a fresh
			// incarnation recovers the complete memo.
			cfg2 := newPersistShapeConfig(t)
			p2 := openPersist(t, dir, nil)
			defer p2.Close()
			if err := p2.AttachMemo(shapeHash(t), cfg2.Tests, nil); err != nil {
				t.Fatal(err)
			}
			if n := cfg2.Tests.Len(); n != memoLen {
				t.Fatalf("recovered %d memoized valuations after healed outage, want %d", n, memoLen)
			}
		})
	}
}

// TestLedgerRecoveryAndPagination restarts the daemon state and walks
// the recovered ledger through the paginated listing: finished jobs
// reappear with their reports readable from disk, a job that was in
// flight at the crash is recorded failed-as-lost, and limit/cursor
// paging covers the record exactly once.
func TestLedgerRecoveryAndPagination(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	// First incarnation: three finished jobs plus one that never
	// finishes (its submitted entry is the only trace — the shape a
	// SIGKILL mid-run leaves).
	cfgA := newPersistShapeConfig(t)
	pA := openPersist(t, dir, nil)
	schedA := serve.NewScheduler(serve.SchedulerOptions{Persist: pA})
	registerShape(t, schedA, cfgA)
	hash := shapeHash(t)
	algos := []string{"bi", "apx", "exact"}
	ids := make([]string, len(algos))
	skylines := make([]string, len(algos))
	for i, algo := range algos {
		job, err := schedA.Submit(ctx, "shape", algo, runOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = job.ID()
		skylines[i] = skylineJSON(t, mustResult(t, job))
	}
	pA.AppendSubmitted(hash, "ghost-job", "shape", "bi", "", time.Now())
	// 3 submitted + 3 finished + 1 ghost submitted = 7 durable records.
	waitUntil(t, 5*time.Second, "ledger flushed", func() bool {
		pA.Flush()
		return pA.Health().Stores[hash+"/jobs"].Flushed >= 7
	})
	pA.Close()

	// Second incarnation: registering the shard recovers its ledger.
	cfgB := newPersistShapeConfig(t)
	pB := openPersist(t, dir, nil)
	defer pB.Close()
	schedB := serve.NewScheduler(serve.SchedulerOptions{Persist: pB})
	registerShape(t, schedB, cfgB)
	srv := httptest.NewServer(serve.NewServer(schedB, serve.ServerOptions{}))
	defer srv.Close()
	client := serve.NewClient(srv.URL)

	// Page through with limit 2: 4 recovered jobs in submission order.
	var listed []string
	cursor := ""
	pages := 0
	for {
		page, err := client.List(ctx, cursor, 2)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		for _, st := range page.Jobs {
			listed = append(listed, st.JobID)
			if st.Report != nil {
				t.Fatalf("list page carries a report for %s; the listing is a summary", st.JobID)
			}
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	wantIDs := append(append([]string(nil), ids...), "ghost-job")
	if len(listed) != len(wantIDs) || pages != 2 {
		t.Fatalf("paged listing = %v over %d pages, want %v over 2", listed, pages, wantIDs)
	}
	for i := range wantIDs {
		if listed[i] != wantIDs[i] {
			t.Fatalf("recovered order[%d] = %s, want %s", i, listed[i], wantIDs[i])
		}
	}

	// An unknown cursor yields an empty page, not an error.
	page, err := client.List(ctx, "no-such-job", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 0 || page.NextCursor != "" {
		t.Fatalf("unknown cursor page = %+v, want empty", page)
	}

	// Finished jobs resolve with their reports read back from disk.
	for i, id := range ids {
		st, err := client.Status(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Status != serve.StatusDone || st.Report == nil {
			t.Fatalf("recovered job %s = %+v, want done with report", id, st)
		}
		if got := skylineJSON(t, st.Report); got != skylines[i] {
			t.Fatalf("recovered report of %s diverged:\nwant %s\ngot  %s", id, skylines[i], got)
		}
	}

	// The in-flight job is failed-as-lost, never resurrected as running.
	st, err := client.Status(ctx, "ghost-job")
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != serve.StatusFailed || !strings.Contains(st.Error, "lost") {
		t.Fatalf("crashed in-flight job = %+v, want failed with a lost error", st)
	}
}

// TestLedgerWindowArchivesHandles bounds resident memory: once a
// finished job's ledger record is durable and it falls beyond the
// window, its in-memory handle is dropped — and its status and report
// remain fully resolvable from disk.
func TestLedgerWindowArchivesHandles(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	cfg := newPersistShapeConfig(t)
	p := openPersist(t, dir, nil)
	defer p.Close()
	sched := serve.NewScheduler(serve.SchedulerOptions{Persist: p, LedgerWindow: 1})
	registerShape(t, sched, cfg)
	srv := httptest.NewServer(serve.NewServer(sched, serve.ServerOptions{}))
	defer srv.Close()
	client := serve.NewClient(srv.URL)

	var ids []string
	var skylines []string
	for i := 0; i < 3; i++ {
		job, err := sched.Submit(ctx, "shape", "bi", runOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID())
		skylines = append(skylines, skylineJSON(t, mustResult(t, job)))
	}

	// With a window of 1, the two older finished jobs archive once
	// their records are durable.
	waitUntil(t, 5*time.Second, "older handles archived", func() bool {
		p.Flush()
		recs := sched.Jobs()
		return recs[0].Live() == nil && recs[1].Live() == nil
	})

	for i, id := range ids {
		st, err := client.Status(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Status != serve.StatusDone || st.Report == nil {
			t.Fatalf("archived job %s = %+v, want done with report", id, st)
		}
		if got := skylineJSON(t, st.Report); got != skylines[i] {
			t.Fatalf("archived report of %s diverged", id)
		}
	}
}
