package serve_test

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fst"
	"repro/internal/table"
	"repro/modis"
	"repro/modis/serve"
	"repro/modis/workload"
)

// inferenceGauge tracks the concurrent-inference high-water mark across
// every model that shares it — the observable the pool bound is
// asserted on.
type inferenceGauge struct {
	cur  atomic.Int64
	high atomic.Int64
}

func (g *inferenceGauge) enter() {
	c := g.cur.Add(1)
	for {
		h := g.high.Load()
		if c <= h || g.high.CompareAndSwap(h, c) {
			return
		}
	}
}

func (g *inferenceGauge) exit() { g.cur.Add(-1) }

// gaugedModel is shapeModel with the gauge wrapped around Evaluate and
// a distinct name so differently-named instances register as distinct
// shards.
type gaugedModel struct {
	inner *shapeModel
	name  string
	gauge *inferenceGauge
}

func (m *gaugedModel) Name() string { return m.name }

func (m *gaugedModel) Evaluate(d *table.Table) ([]float64, error) {
	if m.gauge != nil {
		m.gauge.enter()
		defer m.gauge.exit()
	}
	return m.inner.Evaluate(d)
}

// newGaugedConfig builds a shape config whose model carries the gauge
// and a caller-chosen name; rows varies the universal table so two
// configs hash to distinct shards even beyond the model name.
func newGaugedConfig(tb testing.TB, name string, rows int, sleep time.Duration, g *inferenceGauge) *fst.Config {
	tb.Helper()
	u := table.New("D_U", table.Schema{
		{Name: "a", Kind: table.KindFloat},
		{Name: "b", Kind: table.KindFloat},
		{Name: "target", Kind: table.KindInt},
	})
	for i := 0; i < rows; i++ {
		u.MustAppend(table.Row{
			table.Float(float64(i % 3)),
			table.Float(float64(i % 4)),
			table.Int(int64(i % 2)),
		})
	}
	sp := fst.NewSpace(u, "target", fst.SpaceConfig{MaxLiteralsPerAttr: 4})
	return &fst.Config{
		Space: sp,
		Model: &gaugedModel{inner: &shapeModel{space: sp, sleep: sleep}, name: name, gauge: g},
		Measures: []fst.Measure{
			{Name: "p0", Normalize: fst.Identity(1e-3)},
			{Name: "p1", Normalize: fst.Identity(1e-3)},
		},
	}
}

func registerNamed(tb testing.TB, sched *serve.Scheduler, name string, cfg *fst.Config) {
	tb.Helper()
	d, err := workload.Describe(name, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if err := sched.Register(d, cfg); err != nil {
		tb.Fatal(err)
	}
}

// TestSkylineDeterminismAcrossPoolSizes is the tentpole determinism
// property: the scheduler's skylines are a pure function of the
// configuration, never of the worker count. For pool sizes 1, 2, and 8
// every algorithm must reproduce the solo in-process engine's skyline
// byte for byte — both submitted alone and submitted as five
// concurrent, window-merging runs.
func TestSkylineDeterminismAcrossPoolSizes(t *testing.T) {
	want := map[string]string{}
	for _, algo := range allAlgorithms() {
		rep, err := modis.NewEngine(newShapeConfig(t, 0)).Run(context.Background(), algo, runOpts()...)
		if err != nil {
			t.Fatalf("solo %s: %v", algo, err)
		}
		want[algo] = skylineJSON(t, rep)
	}

	for _, workers := range []int{1, 2, 8} {
		// Solo submissions: one job at a time on a fresh scheduler.
		sched := serve.NewScheduler(serve.SchedulerOptions{Workers: workers})
		registerShape(t, sched, newShapeConfig(t, 0))
		for _, algo := range allAlgorithms() {
			job, err := sched.Submit(context.Background(), "shape", algo, runOpts()...)
			if err != nil {
				t.Fatalf("workers=%d submit %s: %v", workers, algo, err)
			}
			if got := skylineJSON(t, mustResult(t, job)); got != want[algo] {
				t.Errorf("workers=%d solo %s: skyline diverges\n want: %s\n got:  %s", workers, algo, want[algo], got)
			}
		}
		sched.Close()

		// Batched submissions: all five algorithms in flight at once,
		// windows merging across runs.
		sched = serve.NewScheduler(serve.SchedulerOptions{Workers: workers, AlignWindow: 10 * time.Millisecond})
		registerShape(t, sched, newShapeConfig(t, 20*time.Microsecond))
		jobs := map[string]*modis.Job{}
		for _, algo := range allAlgorithms() {
			job, err := sched.Submit(context.Background(), "shape", algo, runOpts()...)
			if err != nil {
				t.Fatalf("workers=%d submit %s: %v", workers, algo, err)
			}
			jobs[algo] = job
		}
		for _, algo := range allAlgorithms() {
			if got := skylineJSON(t, mustResult(t, jobs[algo])); got != want[algo] {
				t.Errorf("workers=%d batched %s: skyline diverges\n want: %s\n got:  %s", workers, algo, want[algo], got)
			}
		}
		sched.Close()
	}
}

// TestPoolBoundsInferenceConcurrency is the saturation property: two
// workloads flooding one scheduler must never have more model
// inferences executing at once than the pool has workers — however
// many shards, runs, and merged passes are in flight — and both
// workloads must make progress to completion.
func TestPoolBoundsInferenceConcurrency(t *testing.T) {
	const workers = 2
	gauge := &inferenceGauge{}
	sched := serve.NewScheduler(serve.SchedulerOptions{Workers: workers})
	defer sched.Close()
	registerNamed(t, sched, "wl-a", newGaugedConfig(t, "shape-a", 24, 100*time.Microsecond, gauge))
	registerNamed(t, sched, "wl-b", newGaugedConfig(t, "shape-b", 36, 100*time.Microsecond, gauge))

	var jobs []*modis.Job
	for i := 0; i < 3; i++ {
		for _, wl := range []string{"wl-a", "wl-b"} {
			job, err := sched.Submit(context.Background(), wl, "exact", runOpts()...)
			if err != nil {
				t.Fatalf("submit %s: %v", wl, err)
			}
			jobs = append(jobs, job)
		}
	}
	for _, job := range jobs {
		if _, err := job.Result(); err != nil {
			t.Fatalf("job %s: %v", job.ID(), err)
		}
	}
	if high := gauge.high.Load(); high > workers {
		t.Errorf("concurrent inferences peaked at %d, pool has %d workers", high, workers)
	}
	if high := gauge.high.Load(); high == 0 {
		t.Error("gauge never saw an inference — test wired wrong")
	}
}

// TestPoolFairShareAcrossShards is the fairness property: a shard
// saturating the pool with a backlog of slow jobs must not stall
// another shard's short job beyond its fair share of the single
// worker. The guest job interleaves with the hog's tasks (DRR) and
// finishes while the hog's backlog is still draining; a FIFO pool
// would finish it last.
func TestPoolFairShareAcrossShards(t *testing.T) {
	sched := serve.NewScheduler(serve.SchedulerOptions{Workers: 1})
	defer sched.Close()
	registerNamed(t, sched, "hog", newGaugedConfig(t, "shape-hog", 24, 400*time.Microsecond, nil))
	registerNamed(t, sched, "guest", newGaugedConfig(t, "shape-guest", 36, 0, nil))

	var hogs []*modis.Job
	for i := 0; i < 4; i++ {
		job, err := sched.Submit(context.Background(), "hog", "exact", runOpts()...)
		if err != nil {
			t.Fatalf("submit hog: %v", err)
		}
		hogs = append(hogs, job)
	}
	// Let the hog start occupying the worker before the guest arrives.
	<-time.After(5 * time.Millisecond)
	guest, err := sched.Submit(context.Background(), "guest", "bi", runOpts()...)
	if err != nil {
		t.Fatalf("submit guest: %v", err)
	}
	if _, err := guest.Result(); err != nil {
		t.Fatalf("guest: %v", err)
	}
	// Bounded wait: when the guest finishes, the hog's backlog must not
	// be fully drained — the guest did not queue behind all of it.
	stillRunning := 0
	for _, job := range hogs {
		select {
		case <-job.Done():
		default:
			stillRunning++
		}
	}
	if stillRunning == 0 {
		t.Error("guest finished only after the hog's entire backlog — no fair interleaving")
	}
	for _, job := range hogs {
		if _, err := job.Result(); err != nil {
			t.Fatalf("hog job %s: %v", job.ID(), err)
		}
	}
}
