package serve

// White-box registration tests: the hash-collision guard needs the
// hash-injection seam (s.register), since genuine SHA-256 collisions
// are not constructible in a test.

import (
	"strings"
	"testing"

	"repro/internal/fst"
	"repro/modis/workload"
)

func regDesc(name, task string) *workload.Descriptor {
	return &workload.Descriptor{Version: workload.Version, Name: name, Task: task, Target: "y", Model: "m"}
}

// TestRegisterCollisionGuard: two descriptors that hash identically
// but differ structurally must be rejected — silently sharing an
// engine would cross-contaminate memoized valuations between genuinely
// different workloads.
func TestRegisterCollisionGuard(t *testing.T) {
	s := NewScheduler(SchedulerOptions{})
	const forced = "feedfacefeedfacefeedfacefeedfacefeedfacefeedfacefeedfacefeedface"
	if err := s.register(regDesc("wl-a", "t1"), &fst.Config{}, forced); err != nil {
		t.Fatal(err)
	}
	err := s.register(regDesc("wl-b", "t2"), &fst.Config{}, forced)
	if err == nil {
		t.Fatal("structurally different descriptors with one hash registered without error")
	}
	if !strings.Contains(err.Error(), "collision") {
		t.Errorf("collision error %q does not name the condition", err)
	}
	// The rejected workload must not have been registered half-way.
	if s.Engine("wl-b") != nil {
		t.Error("rejected registration left an engine behind")
	}
	if got := s.WorkloadNames(); len(got) != 1 || got[0] != "wl-a" {
		t.Errorf("catalog after rejected registration = %v, want [wl-a]", got)
	}
}

// TestRegisterSharesStructurallyEqualShards: the legitimate twin of
// the collision case — same canonical identity under two catalog
// names shares one shard (and the first config's engine and memo).
func TestRegisterSharesStructurallyEqualShards(t *testing.T) {
	s := NewScheduler(SchedulerOptions{})
	a, b := regDesc("first", "t1"), regDesc("second", "t1") // Name is excluded from identity
	if a.Hash() != b.Hash() {
		t.Fatal("fixture broke: renamed descriptors must share a hash")
	}
	if err := s.Register(a, &fst.Config{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(b, &fst.Config{}); err != nil {
		t.Fatal(err)
	}
	if s.Engine("first") == nil || s.Engine("first") != s.Engine("second") {
		t.Error("structurally equal workloads must share one engine")
	}
	shards := s.Shards()
	if len(shards) != 1 || len(shards[0].Workloads) != 2 {
		t.Fatalf("shards = %+v, want one shard holding both names", shards)
	}

	// Idempotent re-registration of the same identity under the same
	// name is a no-op; rebinding the name to a different identity is
	// an error.
	if err := s.Register(regDesc("first", "t1"), &fst.Config{}); err != nil {
		t.Errorf("idempotent re-registration errored: %v", err)
	}
	if err := s.Register(regDesc("first", "t9"), &fst.Config{}); err == nil {
		t.Error("rebinding a catalog name to a different workload must fail")
	}

	// Degenerate inputs fail loudly.
	if err := s.Register(nil, &fst.Config{}); err == nil {
		t.Error("nil descriptor registered")
	}
	if err := s.Register(regDesc("", "t1"), &fst.Config{}); err == nil {
		t.Error("unnamed descriptor registered")
	}
	if err := s.Register(regDesc("third", "t1"), nil); err == nil {
		t.Error("nil config registered")
	}
}
