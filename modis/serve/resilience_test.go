package serve_test

// Resilience contract tests: idempotent submission (single-flight,
// replay semantics on the wire, recovery across restarts), overload
// shedding (bounded admission queue, max queue wait), deadline-budget
// enforcement, SSE resume with Last-Event-ID, and the client's unified
// retry/backoff and hedged reads.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/modis/serve"
)

// postJob POSTs a submit request and returns the raw response plus
// decoded status.
func postJob(tb testing.TB, url string, req serve.SubmitRequest, headers map[string]string) (*http.Response, *serve.JobStatus) {
	tb.Helper()
	blob, err := json.Marshal(req)
	if err != nil {
		tb.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", strings.NewReader(string(blob)))
	if err != nil {
		tb.Fatal(err)
	}
	for k, v := range headers {
		hr.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var st serve.JobStatus
	json.Unmarshal(body, &st)
	return resp, &st
}

// TestIdempotentSubmitReplays: a repeated key answers 200 with the
// Idempotency-Replayed header and the original job, whether the key
// traveled in the body or the header; a fresh key answers 202.
func TestIdempotentSubmitReplays(t *testing.T) {
	_, hs := newTestServer(t, 0)
	req := serve.SubmitRequest{
		Workload:  "shape",
		Algorithm: "bi",
		Options:   &serve.JobOptions{Epsilon: fp(0.15), MaxLevel: intp(3), Seed: i64p(2), K: intp(3)},
	}
	req.IdempotencyKey = "key-replay"

	first, st1 := postJob(t, hs.URL, req, nil)
	if first.StatusCode != http.StatusAccepted || first.Header.Get(serve.ReplayedHeader) != "" {
		t.Fatalf("fresh keyed submit: status %d, replay header %q; want 202 and none",
			first.StatusCode, first.Header.Get(serve.ReplayedHeader))
	}

	second, st2 := postJob(t, hs.URL, req, nil)
	if second.StatusCode != http.StatusOK || second.Header.Get(serve.ReplayedHeader) != "true" {
		t.Fatalf("replayed submit: status %d, replay header %q; want 200 and true",
			second.StatusCode, second.Header.Get(serve.ReplayedHeader))
	}
	if st2.JobID != st1.JobID {
		t.Fatalf("replay returned job %q, want original %q", st2.JobID, st1.JobID)
	}
	if st2.IdemKey != "key-replay" {
		t.Errorf("replayed status carries key %q, want %q", st2.IdemKey, "key-replay")
	}

	// Header form: empty body key, Idempotency-Key header fills it.
	req.IdempotencyKey = ""
	third, st3 := postJob(t, hs.URL, req, map[string]string{serve.IdempotencyHeader: "key-replay"})
	if third.StatusCode != http.StatusOK || st3.JobID != st1.JobID {
		t.Fatalf("header-keyed replay: status %d job %q, want 200 and %q", third.StatusCode, st3.JobID, st1.JobID)
	}

	// A different key is a different logical submission.
	req.IdempotencyKey = "key-other"
	fourth, st4 := postJob(t, hs.URL, req, nil)
	if fourth.StatusCode != http.StatusAccepted || st4.JobID == st1.JobID {
		t.Fatalf("distinct key: status %d job %q, want a fresh 202 job", fourth.StatusCode, st4.JobID)
	}
}

// TestIdempotentSubmitSingleFlight: concurrent submissions under one
// key resolve to exactly one job — one runs, the rest wait for its
// acceptance and replay it.
func TestIdempotentSubmitSingleFlight(t *testing.T) {
	sched := serve.NewScheduler(serve.SchedulerOptions{})
	registerShape(t, sched, newShapeConfig(t, time.Millisecond))
	ctx := context.Background()

	const racers = 8
	ids := make([]string, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, _, err := sched.SubmitKeyed(ctx, "shape", "bi", "key-race", runOpts()...)
			if err != nil {
				t.Errorf("racer %d: %v", i, err)
				return
			}
			ids[i] = rec.ID
		}(i)
	}
	wg.Wait()
	for i := 1; i < racers; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("racer %d got job %q, racer 0 got %q; want one job", i, ids[i], ids[0])
		}
	}
	if jobs := sched.Jobs(); len(jobs) != 1 {
		t.Fatalf("%d jobs exist after %d same-key submissions, want 1", len(jobs), racers)
	}
}

// TestIdempotencyRecoveredAcrossRestart: a key bound in one
// incarnation dedupes in the next — the recovered ledger re-registers
// it, so a proxy failover retry after a node crash still cannot
// double-run.
func TestIdempotencyRecoveredAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	pA := openPersist(t, dir, nil)
	schedA := serve.NewScheduler(serve.SchedulerOptions{Persist: pA})
	registerShape(t, schedA, newPersistShapeConfig(t))
	rec, replayed, err := schedA.SubmitKeyed(ctx, "shape", "bi", "key-durable", runOpts()...)
	if err != nil || replayed {
		t.Fatalf("cold keyed submit = (%v, replayed=%v)", err, replayed)
	}
	mustResult(t, rec.Live())
	if !pA.Flush() {
		t.Fatal("cold flush did not drain")
	}
	pA.Close()

	pB := openPersist(t, dir, nil)
	defer pB.Close()
	schedB := serve.NewScheduler(serve.SchedulerOptions{Persist: pB})
	registerShape(t, schedB, newPersistShapeConfig(t))
	rec2, replayed, err := schedB.SubmitKeyed(ctx, "shape", "bi", "key-durable", runOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if !replayed || rec2.ID != rec.ID {
		t.Fatalf("warm keyed submit = (job %q, replayed=%v), want replay of %q", rec2.ID, replayed, rec.ID)
	}
	// And the replayed record still reads back its report.
	if st, ok := schedB.Job(rec.ID); !ok || st.IdemKey != "key-durable" {
		t.Fatalf("recovered record = (%+v, %v), want the keyed job", st, ok)
	}
}

// TestSubmitShedsWhenQueueFull: with one execution slot and a
// one-deep admission queue, the third concurrent submission is shed at
// the door — 503 with a Retry-After pacing hint, classified retryable.
func TestSubmitShedsWhenQueueFull(t *testing.T) {
	sched := serve.NewScheduler(serve.SchedulerOptions{
		MaxConcurrent: 1,
		MaxQueue:      1,
	})
	registerShape(t, sched, newShapeConfig(t, 5*time.Millisecond))
	srv := serve.NewServer(sched, serve.ServerOptions{})
	hs := httptest.NewServer(srv)
	t.Cleanup(func() { hs.Close(); srv.Close() })
	ctx := context.Background()
	cl := serve.NewClient(hs.URL)

	req := serve.SubmitRequest{
		Workload:  "shape",
		Algorithm: "bi",
		Options:   &serve.JobOptions{Epsilon: fp(0.15), MaxLevel: intp(3), Seed: i64p(2), K: intp(3)},
	}
	// Fill the slot, then the queue.
	running, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "first job to occupy the slot", func() bool {
		st, err := cl.Status(ctx, running.JobID)
		return err == nil && st.Status == serve.StatusRunning
	})
	if _, err := cl.Submit(ctx, req); err != nil {
		t.Fatalf("queue-depth-1 submit should be accepted: %v", err)
	}
	waitUntil(t, 5*time.Second, "second job to queue", func() bool {
		return sched.QueueDepth() == 1
	})

	_, err = cl.Submit(ctx, req)
	if err == nil {
		t.Fatal("third submit was accepted; want a 503 shed")
	}
	var ae *serve.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("shed error = %v, want APIError 503", err)
	}
	if ae.RetryAfter <= 0 {
		t.Errorf("shed response carried no Retry-After hint")
	}
	if !serve.Retryable(err) {
		t.Errorf("overload shed must classify retryable")
	}
}

// TestQueuedSubmitShedAfterMaxWait: a job that queues for a slot
// longer than MaxQueueWait fails fast with the overload error instead
// of burning its deadline at the back of the line.
func TestQueuedSubmitShedAfterMaxWait(t *testing.T) {
	sched := serve.NewScheduler(serve.SchedulerOptions{
		MaxConcurrent: 1,
		MaxQueueWait:  50 * time.Millisecond,
	})
	registerShape(t, sched, newShapeConfig(t, 5*time.Millisecond))
	ctx := context.Background()

	// A long job holds the only slot.
	long, err := sched.Submit(ctx, "shape", "bi", runOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer long.Cancel()
	waitUntil(t, 5*time.Second, "long job to start", func() bool { return long.Started() })

	start := time.Now()
	queued, err := sched.Submit(ctx, "shape", "bi", runOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := queued.Result(); err == nil || !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("queued job ended with %v, want ErrOverloaded after the wait bound", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("shed took %v; the wait bound is 50ms", waited)
	}
}

// TestDeadlineBudgetBoundsRun: TimeoutMS caps queue wait plus run —
// the engine never runs past the propagated budget.
func TestDeadlineBudgetBoundsRun(t *testing.T) {
	_, hs := newTestServer(t, 2*time.Millisecond)
	cl := serve.NewClient(hs.URL)
	ctx := context.Background()

	start := time.Now()
	// Unbudgeted full-space exact run on a slow model: far longer than
	// the 80ms budget, so only the budget can end it.
	st, err := cl.Submit(ctx, serve.SubmitRequest{
		Workload:  "shape",
		Algorithm: "exact",
		TimeoutMS: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := cl.Wait(ctx, st.JobID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if final.Status != serve.StatusFailed || !strings.Contains(final.Error, "deadline") {
		t.Fatalf("budgeted job ended (%s, %q), want failed on its deadline", final.Status, final.Error)
	}
	// The run stopped within a scheduling slack of the 80ms budget, not
	// at some engine-internal timeout.
	if elapsed > 2*time.Second {
		t.Fatalf("budgeted job terminated after %v; budget was 80ms", elapsed)
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	event string
	id    int
	data  string
}

func readSSE(tb testing.TB, url string, lastEventID string) ([]sseEvent, int) {
	tb.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		tb.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	var events []sseEvent
	cur := sseEvent{id: -1}
	for _, line := range strings.Split(string(body), "\n") {
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(strings.TrimPrefix(line, "id: "), "%d", &cur.id)
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" {
				events = append(events, cur)
			}
			cur = sseEvent{id: -1}
		}
	}
	return events, resp.StatusCode
}

// TestSSEResumeWithLastEventID: the event stream numbers progress
// events; a reconnect with Last-Event-ID receives exactly the events
// after it — no duplicate, no gap — and a malformed header is a 400.
func TestSSEResumeWithLastEventID(t *testing.T) {
	_, hs := newTestServer(t, 0)
	cl := serve.NewClient(hs.URL)
	ctx := context.Background()

	// Full-space exact run: one progress event per explored level,
	// enough to resume from the middle.
	st, err := cl.Submit(ctx, serve.SubmitRequest{
		Workload:  "shape",
		Algorithm: "exact",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, st.JobID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	eventsURL := hs.URL + "/v1/jobs/" + st.JobID + "/events"

	full, status := readSSE(t, eventsURL, "")
	if status != http.StatusOK {
		t.Fatalf("full stream: status %d", status)
	}
	var progress []sseEvent
	for _, ev := range full {
		if ev.event == "progress" {
			if ev.id != len(progress) {
				t.Fatalf("progress event %d carries id %d; ids must be the event's index", len(progress), ev.id)
			}
			progress = append(progress, ev)
		}
	}
	if len(progress) < 3 {
		t.Fatalf("run produced %d progress events; need >= 3 for a meaningful resume", len(progress))
	}
	if full[len(full)-1].event != "end" {
		t.Fatalf("stream did not close with an end event: %+v", full[len(full)-1])
	}

	// Resume after the second event: exactly the tail, in order.
	resumed, status := readSSE(t, eventsURL, "1")
	if status != http.StatusOK {
		t.Fatalf("resumed stream: status %d", status)
	}
	var tail []sseEvent
	for _, ev := range resumed {
		if ev.event == "progress" {
			tail = append(tail, ev)
		}
	}
	if len(tail) != len(progress)-2 {
		t.Fatalf("resume after id 1 delivered %d progress events, want %d", len(tail), len(progress)-2)
	}
	for i, ev := range tail {
		if want := progress[i+2]; ev.id != want.id || ev.data != want.data {
			t.Fatalf("resumed event %d = {id %d %q}, want {id %d %q}", i, ev.id, ev.data, want.id, want.data)
		}
	}

	if _, status := readSSE(t, eventsURL, "not-a-number"); status != http.StatusBadRequest {
		t.Fatalf("malformed Last-Event-ID: status %d, want 400", status)
	}
}

// flakyFront wraps a daemon handler and fails the first N submissions
// with a retryable status, recording every idempotency key it saw.
type flakyFront struct {
	inner http.Handler
	fail  atomic.Int32

	mu   sync.Mutex
	keys []string
}

func (f *flakyFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
		blob, _ := io.ReadAll(r.Body)
		var req serve.SubmitRequest
		json.Unmarshal(blob, &req)
		f.mu.Lock()
		f.keys = append(f.keys, req.IdempotencyKey)
		f.mu.Unlock()
		if f.fail.Add(-1) >= 0 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"injected: node briefly unavailable"}`, http.StatusServiceUnavailable)
			return
		}
		r.Body = io.NopCloser(strings.NewReader(string(blob)))
	}
	f.inner.ServeHTTP(w, r)
}

// TestClientRetryCarriesOneKey: with retries armed the client mints an
// idempotency key once and replays it on every attempt, so a retried
// submit can only ever resolve to one job.
func TestClientRetryCarriesOneKey(t *testing.T) {
	sched := serve.NewScheduler(serve.SchedulerOptions{})
	registerShape(t, sched, newShapeConfig(t, 0))
	srv := serve.NewServer(sched, serve.ServerOptions{})
	front := &flakyFront{inner: srv}
	front.fail.Store(2)
	hs := httptest.NewServer(front)
	t.Cleanup(func() { hs.Close(); srv.Close() })

	cl := serve.NewClient(hs.URL).WithRetry(serve.RetryPolicy{
		MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
	})
	st, err := cl.Submit(context.Background(), serve.SubmitRequest{
		Workload:  "shape",
		Algorithm: "bi",
		Options:   &serve.JobOptions{Epsilon: fp(0.15), MaxLevel: intp(3), Seed: i64p(2), K: intp(3)},
	})
	if err != nil {
		t.Fatalf("submit through flaky front: %v", err)
	}
	front.mu.Lock()
	keys := append([]string(nil), front.keys...)
	front.mu.Unlock()
	if len(keys) != 3 {
		t.Fatalf("front saw %d attempts, want 3 (2 failures + success)", len(keys))
	}
	for i, k := range keys {
		if k == "" || k != keys[0] {
			t.Fatalf("attempt %d carried key %q; every retry must reuse %q", i, k, keys[0])
		}
	}
	if jobs := sched.Jobs(); len(jobs) != 1 || jobs[0].ID != st.JobID {
		t.Fatalf("scheduler holds %d jobs, want exactly the accepted one", len(jobs))
	}
}

// slowFirstRead wraps a daemon handler and stalls the first status
// read — the straggler a hedged read races.
type slowFirstRead struct {
	inner http.Handler
	calls atomic.Int32
	delay time.Duration
}

func (s *slowFirstRead) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/jobs/") {
		if s.calls.Add(1) == 1 {
			time.Sleep(s.delay)
		}
	}
	s.inner.ServeHTTP(w, r)
}

// TestHedgedReadRacesSlowReplica: with hedging armed, one stalled read
// costs one hedge delay, not the stall.
func TestHedgedReadRacesSlowReplica(t *testing.T) {
	sched := serve.NewScheduler(serve.SchedulerOptions{})
	registerShape(t, sched, newShapeConfig(t, 0))
	srv := serve.NewServer(sched, serve.ServerOptions{})
	front := &slowFirstRead{inner: srv, delay: 400 * time.Millisecond}
	hs := httptest.NewServer(front)
	t.Cleanup(func() { hs.Close(); srv.Close() })
	ctx := context.Background()

	cl := serve.NewClient(hs.URL).WithHedge(20 * time.Millisecond)
	st, err := cl.Submit(ctx, serve.SubmitRequest{
		Workload:  "shape",
		Algorithm: "bi",
		Options:   &serve.JobOptions{Epsilon: fp(0.15), MaxLevel: intp(3), Seed: i64p(2), K: intp(3)},
	})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	if _, err := cl.Status(ctx, st.JobID); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed >= front.delay {
		t.Fatalf("hedged status took %v, at least the full %v stall — the hedge never fired", elapsed, front.delay)
	}
	if front.calls.Load() < 2 {
		t.Fatalf("front saw %d status reads, want the hedged second", front.calls.Load())
	}
}

// TestErrorClassification pins the shared retryable/terminal split the
// client, the proxy, and the chaos harness all route on.
func TestErrorClassification(t *testing.T) {
	retryable := []error{
		&serve.APIError{Status: http.StatusTooManyRequests},
		&serve.APIError{Status: http.StatusBadGateway},
		&serve.APIError{Status: http.StatusServiceUnavailable},
		io.ErrUnexpectedEOF,
		fmt.Errorf("wrapped: %w", serve.ErrOverloaded), // only via status in practice, but EOF-style wrapping must not panic
	}
	for _, err := range retryable[:4] {
		if !serve.Retryable(err) {
			t.Errorf("Retryable(%v) = false, want true", err)
		}
	}
	terminal := []error{
		nil,
		&serve.APIError{Status: http.StatusBadRequest},
		&serve.APIError{Status: http.StatusNotFound},
		&serve.APIError{Status: http.StatusGatewayTimeout}, // exhausted budget: retrying cannot help
		context.Canceled,
		context.DeadlineExceeded,
	}
	for _, err := range terminal {
		if serve.Retryable(err) {
			t.Errorf("Retryable(%v) = true, want false", err)
		}
	}
	if hint, ok := serve.RetryAfterHint(&serve.APIError{Status: 503, RetryAfter: 2 * time.Second}); !ok || hint != 2*time.Second {
		t.Errorf("RetryAfterHint = (%v, %v), want (2s, true)", hint, ok)
	}

	// The policy stops immediately on a terminal error and retries a
	// retryable one up to MaxAttempts.
	p := serve.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond}
	var calls int
	p.Do(context.Background(), func(context.Context) error {
		calls++
		return &serve.APIError{Status: http.StatusBadRequest}
	})
	if calls != 1 {
		t.Errorf("terminal error retried: %d attempts, want 1", calls)
	}
	calls = 0
	p.Do(context.Background(), func(context.Context) error {
		calls++
		return &serve.APIError{Status: http.StatusServiceUnavailable}
	})
	if calls != 3 {
		t.Errorf("retryable error: %d attempts, want MaxAttempts=3", calls)
	}
}
