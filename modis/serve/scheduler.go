// Package serve is the serving layer of the modis engine: a
// [Scheduler] that runs concurrently submitted jobs over shared
// per-workload engines with frontier-aligned valuation batching, a
// [Server] exposing the job API over HTTP (JSON + server-sent events)
// and over JSONL stdin/stdout for scripting, and a [Client] for
// driving a remote daemon programmatically. Command modisd wires a
// Server to the network; cmd/modis -remote runs the CLI against one,
// and cmd/modisproxy routes a fleet of daemons by workload descriptor
// hash.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fst"
	"repro/internal/workpool"
	"repro/modis"
	"repro/modis/workload"
)

// ErrDraining is returned by Scheduler.Submit once Drain has been
// called: the scheduler no longer accepts jobs. Wire layers match it
// with errors.Is to report 503 rather than a client error.
var ErrDraining = errors.New("serve: scheduler is draining, not accepting jobs")

// ErrUnknownWorkload is returned by Submit for a workload name that
// was never registered. Wire layers match it with errors.Is to report
// 404.
var ErrUnknownWorkload = errors.New("serve: unknown workload")

// SchedulerOptions tune a Scheduler. The zero value is ready to use.
type SchedulerOptions struct {
	// AlignWindow is how long a run's valuation window may wait for
	// concurrent runs' windows before executing (default 2ms). Larger
	// windows align more at the cost of latency on runs with nothing to
	// share.
	AlignWindow time.Duration
	// Workers is the fixed worker count of the scheduler's inference
	// pool (default GOMAXPROCS) — the hard bound on exact model
	// inferences executing at once across every shard; modisd's
	// -workers flag. The pool services shards' task queues with
	// deficit round-robin, so a shard saturating the node cannot
	// starve another shard's passes.
	Workers int
	// Parallelism caps one shard's share of the inference pool — how
	// many of a shard's tasks may occupy pool workers at once. 0 means
	// no per-shard cap: a lone shard may use the whole pool. It never
	// adds workers beyond Workers; see docs/serving.md for how it
	// interacts with the per-run WithParallelism option.
	Parallelism int
	// MaxConcurrent bounds the searches executing at once across the
	// scheduler; excess jobs queue in submission order and their wait
	// shows up as the report's Queued time. 0 means unbounded.
	MaxConcurrent int
	// MaxQueue bounds how many admitted jobs may wait for an execution
	// slot (only meaningful with MaxConcurrent > 0). A submission past
	// the bound is rejected synchronously with ErrOverloaded — the wire
	// layer's 503 + Retry-After — instead of joining a line it would
	// time out in. 0 means unbounded.
	MaxQueue int
	// MaxQueueWait bounds how long an admitted job may wait in the
	// queue before it is shed with ErrOverloaded. Shedding early returns
	// the client a fast, explicitly retryable failure instead of
	// consuming its whole deadline at the back of the line. 0 disables.
	MaxQueueWait time.Duration
	// AppendDrainWait bounds how long AppendRows waits for a shard's
	// in-flight runs to finish before rejecting the append with
	// ErrOverloaded (0 = a 30s default; negative = only the request
	// context bounds the wait); modisd's -append-drain flag.
	AppendDrainWait time.Duration
	// Persist, when set, makes the scheduler durable: each registered
	// shard's memo store attaches under state-dir/<hash>/memo at
	// Register time (warm-starting the valuations a previous
	// incarnation paid for), job transitions spill to the shard's
	// ledger under state-dir/<hash>/jobs, and the previous
	// incarnation's jobs are recovered into the record when their
	// shard registers. Nil keeps everything in memory.
	Persist *Persistence
	// LedgerWindow bounds how many finished jobs stay resident with
	// their full in-memory handle once their ledger record is durable;
	// older ones archive — status stays resolvable, the report is read
	// back from disk on demand (default 128; only meaningful with
	// Persist).
	LedgerWindow int
}

// Scheduler runs jobs behind a pool of per-shard engines. A workload
// is registered under a catalog name with its [workload.Descriptor];
// the descriptor's content hash is the shard identity: jobs submitted
// for the same hash — under any catalog name, from any process that
// derived the same descriptor — share one engine (hence one memoized
// test set: overlapping runs share valuations) and one frontier
// batcher (concurrently in-flight runs align their valuation windows
// into shared passes). Jobs for different shards run side by side
// independently, and a shard's persisted state lives in its own
// state-dir/<hash>/ directory, so moving a shard between nodes is a
// directory copy.
//
// A Scheduler is safe for concurrent use. It also keeps the record of
// every job it accepted, so wire layers can resolve job ids.
type Scheduler struct {
	opts SchedulerOptions
	slot chan struct{} // admission semaphore; nil when unbounded
	pool *workpool.Pool
	met  *nodeMetrics

	// regMu serializes Register (which does store IO); s.mu stays a
	// leaf lock for the maps.
	regMu sync.Mutex

	mu       sync.Mutex
	regs     map[string]*registration // catalog name → registration
	shards   map[string]*shard        // descriptor hash → serving state
	jobs     map[string]*JobRecord
	order    []string
	pos      map[string]int        // id → index in order, the pagination cursor index
	finished []string              // durable finished ids, oldest first — the archive queue
	idem     map[string]*idemEntry // idempotency key → accepted job
	inflight int
	queued   int // jobs admitted but still waiting for an execution slot
	draining bool
	idle     chan struct{} // closed when draining hits zero in-flight
}

// idemEntry single-flights one idempotency key: the reserving submit
// publishes its job id and closes done; concurrent same-key submits
// wait on done and return the same record. Entries whose reserving
// attempt failed synchronously are deleted so the key can be retried.
type idemEntry struct {
	done chan struct{}
	id   string
}

// registration binds one catalog name to its shard.
type registration struct {
	name string
	desc *workload.Descriptor
	sh   *shard
}

// shard is one workload identity's shared serving state.
type shard struct {
	hash   string
	canon  string // canonical descriptor JSON — the collision-guard witness
	cfg    *fst.Config
	engine *modis.Engine
	batch  *batcher
	queue  *workpool.Queue // the shard's lane into the scheduler's pool
	met    *shardMetrics
	names  []string // catalog names registered onto this shard, sorted
	jobs   int      // jobs accepted for this shard (including recovered)

	// appendMu serializes AppendRows on the shard; gate excludes each
	// append from the shard's running searches (see append.go).
	appendMu sync.Mutex
	gate     appendGate
}

// JobRecord is a scheduler's ledger entry for one accepted job. A
// record is either live — carrying the job handle — or archived: its
// terminal state is durable in the persistence ledger, the handle has
// been dropped to bound resident memory, and the report is read back
// from disk on demand. Records recovered from a previous incarnation
// start archived.
type JobRecord struct {
	// ID is the job id.
	ID string
	// Workload is the submit-time workload name (may be empty for
	// in-process submissions).
	Workload string
	// Hash is the workload's descriptor hash — the shard the job ran
	// on (empty for records recovered from a pre-descriptor ledger).
	Hash string
	// Algorithm is the canonical algorithm key.
	Algorithm string
	// IdemKey is the submission's idempotency key ("" when none was
	// given). A later submit carrying the same key returns this record
	// instead of running again — across restarts, since the key rides
	// the persisted ledger.
	IdemKey string
	// Submitted is the accept time.
	Submitted time.Time

	mu   sync.Mutex
	job  *modis.Job
	arch *archivedJob
}

// archivedJob is the terminal state kept once the handle is dropped.
type archivedJob struct {
	status    string
	errMsg    string
	hasReport bool
}

// Live returns the in-memory job handle, or nil for an archived
// record.
func (r *JobRecord) Live() *modis.Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.job
}

// archive drops the handle, keeping the terminal state.
func (r *JobRecord) archive(status, errMsg string, hasReport bool) {
	r.mu.Lock()
	r.job = nil
	r.arch = &archivedJob{status: status, errMsg: errMsg, hasReport: hasReport}
	r.mu.Unlock()
}

// snapshot returns the record's two halves atomically: exactly one of
// job/arch is non-nil.
func (r *JobRecord) snapshot() (*modis.Job, *archivedJob) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.job, r.arch
}

// Cancel cancels a live job; archived jobs are already terminal.
func (r *JobRecord) Cancel() {
	if job := r.Live(); job != nil {
		job.Cancel()
	}
}

// Done returns a channel closed once the job is terminal; archived
// records answer immediately.
func (r *JobRecord) Done() <-chan struct{} {
	if job := r.Live(); job != nil {
		return job.Done()
	}
	return closedDone
}

var closedDone = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// NewScheduler returns a Scheduler with the given options. Workloads
// are registered afterwards with Register; with Persist set, each
// Register recovers its shard's memo and job ledger.
func NewScheduler(opts SchedulerOptions) *Scheduler {
	if opts.LedgerWindow <= 0 {
		opts.LedgerWindow = 128
	}
	s := &Scheduler{
		opts:   opts,
		pool:   workpool.New(workpool.Options{Workers: opts.Workers}),
		met:    &nodeMetrics{},
		regs:   map[string]*registration{},
		shards: map[string]*shard{},
		jobs:   map[string]*JobRecord{},
		pos:    map[string]int{},
		idem:   map[string]*idemEntry{},
		idle:   make(chan struct{}),
	}
	if opts.MaxConcurrent > 0 {
		s.slot = make(chan struct{}, opts.MaxConcurrent)
	}
	return s
}

// Close stops the scheduler's inference pool: tasks already submitted
// drain first, and any pass submitted afterwards executes inline on
// its run's goroutine, so in-flight jobs still finish correctly. Call
// after Drain (or CancelAll) when shutting the daemon down.
func (s *Scheduler) Close() {
	s.pool.Close()
}

// Register adds a workload to the catalog under desc.Name, keyed by
// the descriptor's content hash. Registering the same name with the
// same identity is idempotent; a second name whose descriptor is
// structurally equal shares the existing shard (the first
// registration's config — and memo — wins). With persistence enabled,
// the shard's memo store attaches under state-dir/<hash>/memo (warm
// start) and the shard's previous-incarnation jobs are recovered into
// the record.
//
// The hash-collision guard: two descriptors that hash identically but
// differ structurally are rejected with an error rather than silently
// sharing an engine — a silent share would cross-contaminate memoized
// valuations between genuinely different workloads.
func (s *Scheduler) Register(desc *workload.Descriptor, cfg *fst.Config) error {
	if desc == nil {
		return errors.New("serve: register: nil descriptor")
	}
	return s.register(desc, cfg, desc.Hash())
}

// register is Register with the hash injected — the seam the
// collision-guard tests force hashes through (sha256 collisions being
// otherwise hard to come by).
func (s *Scheduler) register(desc *workload.Descriptor, cfg *fst.Config, hash string) error {
	if desc.Name == "" {
		return errors.New("serve: register: descriptor has no catalog name")
	}
	if cfg == nil {
		return fmt.Errorf("serve: register %s: nil config", desc.Name)
	}
	canon := string(desc.CanonicalJSON())

	s.regMu.Lock()
	defer s.regMu.Unlock()

	s.mu.Lock()
	if prev, ok := s.regs[desc.Name]; ok {
		same := prev.sh.hash == hash && prev.sh.canon == canon
		s.mu.Unlock()
		if same {
			return nil // idempotent re-registration
		}
		return fmt.Errorf("serve: register %s: name already bound to workload %.12s", desc.Name, prev.sh.hash)
	}
	if sh, ok := s.shards[hash]; ok {
		if sh.canon != canon {
			s.mu.Unlock()
			return fmt.Errorf("serve: register %s: descriptor hash collision on %.12s: structurally different workloads hash identically; refusing to share an engine", desc.Name, hash)
		}
		// Same identity under another name: share the shard.
		sh.names = append(sh.names, desc.Name)
		sort.Strings(sh.names)
		s.regs[desc.Name] = &registration{name: desc.Name, desc: desc, sh: sh}
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	// New shard. Attach durable state first (store IO, serialized by
	// regMu): persisted row batches replay into the table before the
	// memo attaches — the memo's replay predicate validates each
	// persisted valuation's version against that reconstructed row
	// history — and the shard's previous-incarnation jobs are
	// recovered into the record. Persistence failures degrade the
	// shard to in-memory (visible in Health), never fail registration.
	var recovered []RecoveredJob
	if s.opts.Persist != nil {
		if cfg.Tests == nil {
			cfg.Tests = fst.NewTestSet()
		}
		s.opts.Persist.ReplayRows(hash, cfg)                          //nolint:errcheck // degradation is visible in Health
		s.opts.Persist.AttachMemo(hash, cfg.Tests, memoAcceptor(cfg)) //nolint:errcheck // degradation is visible in Health
		recovered = s.opts.Persist.RecoverShard(hash)
	}

	queue := s.pool.NewQueue(hash, s.opts.Parallelism)
	sh := &shard{
		hash:   hash,
		canon:  canon,
		cfg:    cfg,
		engine: modis.NewEngine(cfg),
		batch:  newBatcher(s.opts.AlignWindow, queue),
		queue:  queue,
		met:    &shardMetrics{},
		names:  []string{desc.Name},
	}
	if cfg.Space != nil {
		// The shard-level mirrors the catalog, healthz, and /metrics
		// read — AppendRows keeps them current under the gate, so reads
		// never touch the space's own fields concurrently with appends.
		sh.met.tableVersion.Store(cfg.Space.Version())
		sh.met.rowCount.Store(int64(len(cfg.Space.Universal.Rows)))
	}
	s.mu.Lock()
	s.shards[hash] = sh
	s.regs[desc.Name] = &registration{name: desc.Name, desc: desc, sh: sh}
	for _, rj := range recovered {
		rec := &JobRecord{
			ID: rj.ID, Workload: rj.Workload, Hash: hash, Algorithm: rj.Algorithm,
			IdemKey: rj.IdemKey, Submitted: rj.Submitted,
		}
		status, errMsg, hasReport := rj.Status, rj.Error, rj.HasReport
		if !rj.Finished {
			status = StatusFailed
			errMsg = "serve: lost: daemon restarted while the job was in flight"
			hasReport = false
			// Converge the ledger so the next restart recovers the
			// loss directly.
			s.opts.Persist.AppendFinished(hash, rj.ID, rj.Workload, rj.Algorithm, rj.IdemKey, rj.Submitted, status, errMsg, nil, nil)
		}
		rec.arch = &archivedJob{status: status, errMsg: errMsg, hasReport: hasReport}
		sh.jobs++
		s.pos[rec.ID] = len(s.order)
		s.jobs[rec.ID] = rec
		s.order = append(s.order, rec.ID)
		if rec.IdemKey != "" {
			// Recovered keys dedupe exactly like live ones: a client
			// retrying a submit it made against the previous incarnation
			// gets its original job back, not a rerun.
			s.idem[rec.IdemKey] = &idemEntry{done: closedDone, id: rec.ID}
		}
	}
	s.mu.Unlock()
	return nil
}

// Engine returns the shared engine serving the named workload, or nil
// if the name was never registered — the pool keying Submit relies on.
func (s *Scheduler) Engine(name string) *modis.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	if reg, ok := s.regs[name]; ok {
		return reg.sh.engine
	}
	return nil
}

// WorkloadNames lists the registered catalog names, sorted.
func (s *Scheduler) WorkloadNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.regs))
	for name := range s.regs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// WorkloadInfo is the catalog view of one registered workload.
type WorkloadInfo struct {
	Name       string               `json:"name"`
	Hash       string               `json:"hash"`
	Descriptor *workload.Descriptor `json:"descriptor,omitempty"`
	// TableVersion is the shard's current table version — append
	// batches committed (live or replayed from the rows log) since the
	// workload's table was built. The descriptor hash is version-blind:
	// appends change serving state, never shard identity.
	TableVersion uint64 `json:"table_version"`
	// Rows is the universal table's current row count.
	Rows int `json:"rows"`
}

// WorkloadInfos lists the registered workloads with their shard
// identity, sorted by name — GET /v1/workloads and the proxy's
// routing catalog.
func (s *Scheduler) WorkloadInfos() []WorkloadInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WorkloadInfo, 0, len(s.regs))
	for _, reg := range s.regs {
		out = append(out, WorkloadInfo{
			Name: reg.name, Hash: reg.sh.hash, Descriptor: reg.desc,
			TableVersion: reg.sh.met.tableVersion.Load(),
			Rows:         int(reg.sh.met.rowCount.Load()),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ShardInfo is the healthz view of one shard this node holds.
type ShardInfo struct {
	Hash string `json:"hash"`
	// Workloads are the catalog names registered onto the shard.
	Workloads []string `json:"workloads"`
	// Jobs counts jobs accepted for the shard, recovered ones
	// included.
	Jobs int `json:"jobs"`
	// Memo is the number of memoized valuations held.
	Memo int `json:"memo"`
	// TableVersion is the shard's current table version; Rows the
	// universal table's current row count.
	TableVersion uint64 `json:"table_version"`
	Rows         int    `json:"rows"`
}

// Shards lists the shards this scheduler holds, sorted by hash — the
// node identity half of /healthz.
func (s *Scheduler) Shards() []ShardInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ShardInfo, 0, len(s.shards))
	for _, sh := range s.shards {
		info := ShardInfo{
			Hash: sh.hash, Workloads: append([]string(nil), sh.names...), Jobs: sh.jobs,
			TableVersion: sh.met.tableVersion.Load(), Rows: int(sh.met.rowCount.Load()),
		}
		if sh.cfg.Tests != nil {
			info.Memo = sh.cfg.Tests.Len()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Hash < out[j].Hash })
	return out
}

// Submit schedules one job: the named algorithm over the registered
// workload, on the workload shard's shared engine, with its valuation
// windows aligned against the shard's other in-flight jobs.
// Submission errors (unknown workload, unknown algorithm, invalid
// options, draining scheduler, overload) surface synchronously;
// everything later is observed through the returned job handle.
func (s *Scheduler) Submit(ctx context.Context, workloadName string, algorithm string, opts ...modis.Option) (*modis.Job, error) {
	rec, _, err := s.SubmitKeyed(ctx, workloadName, algorithm, "", opts...)
	if err != nil {
		return nil, err
	}
	return rec.Live(), nil
}

// SubmitKeyed is Submit with an idempotency key: a key already bound
// to an accepted job — live, archived, or recovered from the persisted
// ledger of a previous incarnation — returns that job's record with
// replayed=true instead of running a second search. Concurrent
// same-key submissions single-flight: exactly one runs, the rest wait
// for its acceptance and replay it. An empty key never dedupes.
//
// The contract is the standard one: a key names one logical
// submission, so retries (client retries after a transport failure,
// proxy failover retries) must reuse the key and SHOULD carry an
// identical request body — the replayed record is returned regardless
// of the retry's body.
func (s *Scheduler) SubmitKeyed(ctx context.Context, workloadName, algorithm, idemKey string, opts ...modis.Option) (rec *JobRecord, replayed bool, err error) {
	var entry *idemEntry
	for {
		s.mu.Lock()
		if idemKey != "" {
			if e, ok := s.idem[idemKey]; ok {
				s.mu.Unlock()
				select {
				case <-e.done:
				case <-ctx.Done():
					return nil, false, ctx.Err()
				}
				if e.id != "" {
					s.mu.Lock()
					rec := s.jobs[e.id]
					s.mu.Unlock()
					return rec, true, nil
				}
				// The reserving attempt failed synchronously and released
				// the key; race to reserve it ourselves.
				continue
			}
		}
		break
	}
	// s.mu is held.
	if s.draining {
		s.mu.Unlock()
		return nil, false, ErrDraining
	}
	reg, ok := s.regs[workloadName]
	if !ok {
		known := make([]string, 0, len(s.regs))
		for name := range s.regs {
			known = append(known, name)
		}
		sort.Strings(known)
		s.mu.Unlock()
		return nil, false, fmt.Errorf("%w %q (known: %s)", ErrUnknownWorkload, workloadName, strings.Join(known, ", "))
	}
	// Overload shedding, part one: a bounded admission queue rejects at
	// the door once MaxQueue jobs already wait for a slot, instead of
	// growing a line whose tail is doomed to time out.
	if s.slot != nil && s.opts.MaxQueue > 0 && s.queued >= s.opts.MaxQueue {
		n := s.queued
		s.mu.Unlock()
		return nil, false, fmt.Errorf("%w: admission queue full (%d waiting, cap %d)", ErrOverloaded, n, s.opts.MaxQueue)
	}
	sh := reg.sh
	s.inflight++
	if s.slot != nil {
		s.queued++
	}
	if idemKey != "" {
		entry = &idemEntry{done: make(chan struct{})}
		s.idem[idemKey] = entry
	}
	s.mu.Unlock()
	h := sh.batch.newRun()

	// The scheduler's hooks come after the caller's options so they
	// cannot be overridden into an unmanaged run. The admission hook
	// joins the batcher quorum only once the run may actually execute:
	// a job waiting in the queue produces no valuation windows, and
	// counting it would make running peers wait out the full alignment
	// window on every pass.
	all := make([]modis.Option, 0, len(opts)+2)
	all = append(all, opts...)
	all = append(all, modis.WithExactRunner(h))
	// entered tracks whether the run passed the shard's append gate, so
	// the completion goroutine releases exactly what was taken.
	var entered atomic.Bool
	all = append(all, modis.WithAdmission(func(ctx context.Context) error {
		if err := s.acquireSlot(ctx); err != nil {
			return err
		}
		if err := sh.gate.beginRun(ctx); err != nil {
			// The run never starts, so the completion goroutine won't
			// release the slot (job.Started() stays false): give it back
			// here.
			if s.slot != nil {
				<-s.slot
			}
			return err
		}
		entered.Store(true)
		h.join()
		return nil
	}))

	job, err := sh.engine.Submit(ctx, algorithm, all...)
	if err != nil {
		h.close()
		s.unqueue()
		s.finishJob()
		if entry != nil {
			s.mu.Lock()
			delete(s.idem, idemKey)
			s.mu.Unlock()
			close(entry.done)
		}
		return nil, false, err
	}
	rec = &JobRecord{ID: job.ID(), Workload: workloadName, Hash: sh.hash, Algorithm: job.Algorithm(), IdemKey: idemKey, Submitted: time.Now(), job: job}
	s.mu.Lock()
	sh.jobs++
	s.pos[rec.ID] = len(s.order)
	s.jobs[rec.ID] = rec
	s.order = append(s.order, rec.ID)
	s.mu.Unlock()
	if entry != nil {
		entry.id = rec.ID
		close(entry.done)
	}
	if s.opts.Persist != nil {
		s.opts.Persist.AppendSubmitted(rec.Hash, rec.ID, rec.Workload, rec.Algorithm, rec.IdemKey, rec.Submitted)
	}

	go func() {
		<-job.Done()
		// Deregister from the batcher first so peers stop waiting,
		// then leave the append gate and release the admission slot
		// for the next queued job.
		h.close()
		if entered.Load() {
			sh.gate.endRun()
		}
		if s.slot != nil && job.Started() {
			<-s.slot
		}
		s.observeFinished(sh, rec, job)
		s.recordFinished(rec)
		s.finishJob()
	}()
	return rec, false, nil
}

// acquireSlot is the admission hook's wait for an execution slot,
// bounded by MaxQueueWait — overload shedding, part two: a job that
// cannot start within the bound fails fast with ErrOverloaded (an
// explicitly retryable failure) instead of burning its whole deadline
// in the queue. Runs on the job goroutine; always leaves the queue
// accounting balanced.
func (s *Scheduler) acquireSlot(ctx context.Context) error {
	defer s.unqueue()
	if s.slot == nil {
		return nil
	}
	select {
	case s.slot <- struct{}{}:
		return nil
	default:
	}
	var shed <-chan time.Time
	if s.opts.MaxQueueWait > 0 {
		t := time.NewTimer(s.opts.MaxQueueWait)
		defer t.Stop()
		shed = t.C
	}
	select {
	case s.slot <- struct{}{}:
		return nil
	case <-shed:
		return fmt.Errorf("%w: shed after queueing %s for an execution slot", ErrOverloaded, s.opts.MaxQueueWait)
	case <-ctx.Done():
		return ctx.Err()
	}
}

// unqueue balances Submit's queued++ once the job stops waiting —
// slot acquired, shed, cancelled, or never started. Idempotence is the
// caller's job: exactly one of the admission hook and the synchronous
// failure path runs it.
func (s *Scheduler) unqueue() {
	s.mu.Lock()
	if s.slot != nil {
		s.queued--
	}
	s.mu.Unlock()
}

// QueueDepth reports how many admitted jobs are waiting for an
// execution slot right now.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// recordFinished spills a terminal job to its shard's ledger; once the
// record is durable the job joins the archive queue, and jobs beyond
// the resident window drop their in-memory handle.
func (s *Scheduler) recordFinished(rec *JobRecord) {
	if s.opts.Persist == nil {
		return
	}
	job := rec.Live()
	if job == nil {
		return
	}
	status, errMsg, rep := terminalState(job)
	s.opts.Persist.AppendFinished(rec.Hash, rec.ID, rec.Workload, rec.Algorithm, rec.IdemKey, rec.Submitted, status, errMsg, rep, func() {
		s.mu.Lock()
		s.finished = append(s.finished, rec.ID)
		var evict []*JobRecord
		for len(s.finished) > s.opts.LedgerWindow {
			id := s.finished[0]
			s.finished = s.finished[1:]
			if old, ok := s.jobs[id]; ok {
				evict = append(evict, old)
			}
		}
		s.mu.Unlock()
		for _, old := range evict {
			if j := old.Live(); j != nil {
				st, em, rp := terminalState(j)
				old.archive(st, em, rp != nil)
			}
		}
	})
}

// terminalState maps a finished job handle onto its wire status.
func terminalState(job *modis.Job) (status, errMsg string, rep *modis.Report) {
	rep, err := job.Result()
	switch {
	case err == nil:
		return StatusDone, "", rep
	case errors.Is(err, context.Canceled):
		return StatusCancelled, err.Error(), nil
	default:
		return StatusFailed, err.Error(), nil
	}
}

func (s *Scheduler) finishJob() {
	s.mu.Lock()
	s.inflight--
	if s.draining && s.inflight == 0 {
		close(s.idle)
	}
	s.mu.Unlock()
}

// Job resolves a job id accepted by this scheduler.
func (s *Scheduler) Job(id string) (*JobRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	return rec, ok
}

// Jobs lists the accepted jobs in submission order.
func (s *Scheduler) Jobs() []*JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*JobRecord, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Workloads lists the distinct workload names of accepted jobs,
// sorted (a debugging aid; the authoritative catalog is
// WorkloadInfos).
func (s *Scheduler) Workloads() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := map[string]bool{}
	var out []string
	for _, rec := range s.jobs {
		if rec.Workload != "" && !seen[rec.Workload] {
			seen[rec.Workload] = true
			out = append(out, rec.Workload)
		}
	}
	sort.Strings(out)
	return out
}

// Drain stops accepting new jobs and waits for the in-flight ones to
// finish, or until ctx expires — the graceful-shutdown path modisd
// takes on SIGTERM. It returns ctx.Err() (with the number of jobs
// still running) when the deadline cuts the wait short; the jobs keep
// their own contexts and are not cancelled here.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		if s.inflight == 0 {
			close(s.idle)
		}
	}
	idle := s.idle
	s.mu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		n := s.inflight
		s.mu.Unlock()
		return fmt.Errorf("serve: drain interrupted with %d jobs in flight: %w", n, ctx.Err())
	}
}

// CancelAll cancels every job still in flight (used after a drain
// deadline passes to shut down hard). Archived jobs are already
// terminal and are skipped.
func (s *Scheduler) CancelAll() {
	for _, rec := range s.Jobs() {
		rec.Cancel()
	}
}

// JobsPage lists accepted jobs in submission order, starting after
// cursor (the last job id of the previous page; empty starts from the
// beginning), returning at most limit records (limit <= 0 means all).
// nextCursor is non-empty iff more jobs follow — pass it back in to
// continue. An unknown cursor yields an empty page with no cursor
// rather than an error: the job it pointed at can only have left the
// record by never having been in it.
func (s *Scheduler) JobsPage(cursor string, limit int) (recs []*JobRecord, nextCursor string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := 0
	if cursor != "" {
		idx, ok := s.pos[cursor]
		if !ok {
			return nil, ""
		}
		start = idx + 1
	}
	end := len(s.order)
	if limit > 0 && start+limit < end {
		end = start + limit
		nextCursor = s.order[end-1]
	}
	for _, id := range s.order[start:end] {
		recs = append(recs, s.jobs[id])
	}
	return recs, nextCursor
}
