// Package serve is the serving layer of the modis engine: a
// [Scheduler] that runs concurrently submitted jobs over shared
// per-workload engines with frontier-aligned valuation batching, a
// [Server] exposing the job API over HTTP (JSON + server-sent events)
// and over JSONL stdin/stdout for scripting, and a [Client] for
// driving a remote daemon programmatically. Command modisd wires a
// Server to the network; cmd/modis -remote runs the CLI against one.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/fst"
	"repro/modis"
)

// ErrDraining is returned by Scheduler.Submit once Drain has been
// called: the scheduler no longer accepts jobs. Wire layers match it
// with errors.Is to report 503 rather than a client error.
var ErrDraining = errors.New("serve: scheduler is draining, not accepting jobs")

// SchedulerOptions tune a Scheduler. The zero value is ready to use.
type SchedulerOptions struct {
	// AlignWindow is how long a run's valuation window may wait for
	// concurrent runs' windows before executing (default 2ms). Larger
	// windows align more at the cost of latency on runs with nothing to
	// share.
	AlignWindow time.Duration
	// Parallelism caps the worker pool of one merged exact-inference
	// pass (default: all CPUs).
	Parallelism int
	// MaxConcurrent bounds the searches executing at once across the
	// scheduler; excess jobs queue in submission order and their wait
	// shows up as the report's Queued time. 0 means unbounded.
	MaxConcurrent int
}

// Scheduler runs jobs behind a pool of per-workload engines. Jobs
// submitted for the same workload — identified by the *fst.Config
// pointer — share one engine (hence one memoized test set: overlapping
// runs share valuations) and one frontier batcher (concurrently
// in-flight runs align their valuation windows into shared passes).
// Jobs for different workloads run side by side independently.
//
// A Scheduler is safe for concurrent use. It also keeps the record of
// every job it accepted, so wire layers can resolve job ids.
type Scheduler struct {
	opts SchedulerOptions
	slot chan struct{} // admission semaphore; nil when unbounded

	mu       sync.Mutex
	groups   map[*fst.Config]*engineGroup
	jobs     map[string]*JobRecord
	order    []string
	inflight int
	draining bool
	idle     chan struct{} // closed when draining hits zero in-flight
}

// engineGroup is one workload's shared serving state.
type engineGroup struct {
	engine *modis.Engine
	batch  *batcher
}

// JobRecord is a scheduler's ledger entry for one accepted job.
type JobRecord struct {
	// Job is the live handle.
	Job *modis.Job
	// Workload is the submit-time workload name (may be empty for
	// in-process submissions).
	Workload string
	// Algorithm is the canonical algorithm key.
	Algorithm string
	// Submitted is the accept time.
	Submitted time.Time
}

// NewScheduler returns a Scheduler with the given options.
func NewScheduler(opts SchedulerOptions) *Scheduler {
	s := &Scheduler{
		opts:   opts,
		groups: map[*fst.Config]*engineGroup{},
		jobs:   map[string]*JobRecord{},
		idle:   make(chan struct{}),
	}
	if opts.MaxConcurrent > 0 {
		s.slot = make(chan struct{}, opts.MaxConcurrent)
	}
	return s
}

// Engine returns the shared engine serving the workload, creating it
// on first use — the pool keying Submit relies on.
func (s *Scheduler) Engine(cfg *fst.Config) *modis.Engine {
	return s.group(cfg).engine
}

func (s *Scheduler) group(cfg *fst.Config) *engineGroup {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[cfg]
	if !ok {
		g = &engineGroup{
			engine: modis.NewEngine(cfg),
			batch:  newBatcher(s.opts.AlignWindow, s.opts.Parallelism),
		}
		s.groups[cfg] = g
	}
	return g
}

// Submit schedules one job: the named algorithm over the given
// workload configuration, on the workload's shared engine, with its
// valuation windows aligned against the workload's other in-flight
// jobs. workload is the display name recorded for wire layers; cfg is
// the workload identity. Submission errors (unknown algorithm, invalid
// options, draining scheduler) surface synchronously; everything later
// is observed through the returned job handle.
func (s *Scheduler) Submit(ctx context.Context, workload string, cfg *fst.Config, algorithm string, opts ...modis.Option) (*modis.Job, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.inflight++
	s.mu.Unlock()
	g := s.group(cfg)
	h := g.batch.newRun()

	// The scheduler's hooks come after the caller's options so they
	// cannot be overridden into an unmanaged run. The admission hook
	// joins the batcher quorum only once the run may actually execute:
	// a job waiting in the queue produces no valuation windows, and
	// counting it would make running peers wait out the full alignment
	// window on every pass.
	all := make([]modis.Option, 0, len(opts)+2)
	all = append(all, opts...)
	all = append(all, modis.WithExactRunner(h))
	all = append(all, modis.WithAdmission(func(ctx context.Context) error {
		if s.slot != nil {
			select {
			case s.slot <- struct{}{}:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		h.join()
		return nil
	}))

	job, err := g.engine.Submit(ctx, algorithm, all...)
	if err != nil {
		h.close()
		s.finishJob()
		return nil, err
	}
	s.mu.Lock()
	s.jobs[job.ID()] = &JobRecord{Job: job, Workload: workload, Algorithm: job.Algorithm(), Submitted: time.Now()}
	s.order = append(s.order, job.ID())
	s.mu.Unlock()

	go func() {
		<-job.Done()
		// Deregister from the batcher first so peers stop waiting,
		// then release the admission slot for the next queued job.
		h.close()
		if s.slot != nil && job.Started() {
			<-s.slot
		}
		s.finishJob()
	}()
	return job, nil
}

func (s *Scheduler) finishJob() {
	s.mu.Lock()
	s.inflight--
	if s.draining && s.inflight == 0 {
		close(s.idle)
	}
	s.mu.Unlock()
}

// Job resolves a job id accepted by this scheduler.
func (s *Scheduler) Job(id string) (*JobRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	return rec, ok
}

// Jobs lists the accepted jobs in submission order.
func (s *Scheduler) Jobs() []*JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*JobRecord, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Workloads lists the distinct workload names of accepted jobs,
// sorted (a debugging aid; the authoritative catalog lives with the
// Server).
func (s *Scheduler) Workloads() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := map[string]bool{}
	var out []string
	for _, rec := range s.jobs {
		if rec.Workload != "" && !seen[rec.Workload] {
			seen[rec.Workload] = true
			out = append(out, rec.Workload)
		}
	}
	sort.Strings(out)
	return out
}

// Drain stops accepting new jobs and waits for the in-flight ones to
// finish, or until ctx expires — the graceful-shutdown path modisd
// takes on SIGTERM. It returns ctx.Err() (with the number of jobs
// still running) when the deadline cuts the wait short; the jobs keep
// their own contexts and are not cancelled here.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		if s.inflight == 0 {
			close(s.idle)
		}
	}
	idle := s.idle
	s.mu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		n := s.inflight
		s.mu.Unlock()
		return fmt.Errorf("serve: drain interrupted with %d jobs in flight: %w", n, ctx.Err())
	}
}

// CancelAll cancels every job still in flight (used after a drain
// deadline passes to shut down hard).
func (s *Scheduler) CancelAll() {
	for _, rec := range s.Jobs() {
		rec.Job.Cancel()
	}
}
