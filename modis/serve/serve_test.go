package serve_test

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/fst"
	"repro/internal/table"
	"repro/modis"
	"repro/modis/serve"
	"repro/modis/workload"
)

// shapeModel derives two opposing measures from the dataset shape (a
// cost shrinking with the table, a loss growing with reduction), so
// searches have a genuine trade-off with no ML cost and results are a
// pure function of the state — the determinism the batching property
// tests lean on. Evaluate is re-entrant; sleep stretches valuations so
// concurrent runs genuinely overlap.
type shapeModel struct {
	space *fst.Space
	sleep time.Duration
}

func (m *shapeModel) Name() string { return "shape" }

func (m *shapeModel) Evaluate(d *table.Table) ([]float64, error) {
	if m.sleep > 0 {
		time.Sleep(m.sleep)
	}
	rows := float64(d.NumRows())
	cols := float64(d.NumCols())
	uRows := float64(m.space.Universal.NumRows())
	uCols := float64(m.space.Universal.NumCols())
	return []float64{
		0.1 + 0.9*(rows/uRows)*(cols/uCols),
		0.1 + 0.9*(1-rows/uRows),
	}, nil
}

// newShapeConfig builds a fresh deterministic configuration. Every
// call returns an independent config (own test set), so solo baselines
// never share valuations with scheduled runs.
func newShapeConfig(tb testing.TB, sleep time.Duration) *fst.Config {
	tb.Helper()
	u := table.New("D_U", table.Schema{
		{Name: "a", Kind: table.KindFloat},
		{Name: "b", Kind: table.KindFloat},
		{Name: "target", Kind: table.KindInt},
	})
	for i := 0; i < 24; i++ {
		u.MustAppend(table.Row{
			table.Float(float64(i % 3)),
			table.Float(float64(i % 4)),
			table.Int(int64(i % 2)),
		})
	}
	sp := fst.NewSpace(u, "target", fst.SpaceConfig{MaxLiteralsPerAttr: 4})
	return &fst.Config{
		Space: sp,
		Model: &shapeModel{space: sp, sleep: sleep},
		Measures: []fst.Measure{
			{Name: "p0", Normalize: fst.Identity(1e-3)},
			{Name: "p1", Normalize: fst.Identity(1e-3)},
		},
	}
}

func allAlgorithms() []string { return []string{"apx", "bi", "nobi", "div", "exact"} }

// skylineJSON renders a report's skyline byte-comparably.
func skylineJSON(tb testing.TB, rep *modis.Report) string {
	tb.Helper()
	blob, err := json.Marshal(rep.Skyline)
	if err != nil {
		tb.Fatal(err)
	}
	return string(blob)
}

// runOpts are the shared tuning knobs of the determinism tests:
// unbudgeted level-bounded runs, so a run's traversal is a pure
// function of the configuration. (A budgeted run on a shared engine
// legitimately stretches further than its solo twin — memo hits cost
// no budget — so budget-limited sharing is exercised separately.)
func runOpts() []modis.Option {
	return []modis.Option{
		modis.WithEpsilon(0.15), modis.WithMaxLevel(3),
		modis.WithSeed(2), modis.WithK(3),
	}
}

func mustResult(tb testing.TB, job *modis.Job) *modis.Report {
	tb.Helper()
	rep, err := job.Result()
	if err != nil {
		tb.Fatal(err)
	}
	return rep
}

// describeShape derives the canonical descriptor a shape config
// registers under.
func describeShape(tb testing.TB, cfg *fst.Config) *workload.Descriptor {
	tb.Helper()
	d, err := workload.Describe("shape", cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return d
}

// registerShape registers cfg with the scheduler under the catalog
// name "shape".
func registerShape(tb testing.TB, sched *serve.Scheduler, cfg *fst.Config) {
	tb.Helper()
	if err := sched.Register(describeShape(tb, cfg), cfg); err != nil {
		tb.Fatal(err)
	}
}

var _ = serve.SubmitRequest{} // keep the import pinned for helpers-only builds
