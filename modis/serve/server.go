package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/table"
	"repro/modis"
)

// SubmitRequest is the wire form of one job submission (POST /v1/jobs
// and the JSONL "submit" op).
type SubmitRequest struct {
	// Workload names a configuration from the server's catalog.
	Workload string `json:"workload"`
	// Algorithm is a registry key or alias ("bi", "bimodis", ...).
	Algorithm string `json:"algorithm"`
	// Options tune the run; absent fields keep engine defaults.
	Options *JobOptions `json:"options,omitempty"`
	// TimeoutMS is the request's remaining deadline budget: the job is
	// cancelled with context.DeadlineExceeded once it has spent this
	// long queued plus running on the node. Each forwarding hop (proxy,
	// retrying client) rewrites it to what is left of the original
	// budget before sending. 0 = none.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// IdempotencyKey, when non-empty, names this logical submission: a
	// resubmission with the same key — a client retry after a transport
	// failure, a proxy failover — returns the already-accepted job
	// (replayed, 200) instead of running a second search, across node
	// restarts. The Idempotency-Key header fills this field when the
	// body leaves it empty.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// IdempotencyHeader is the HTTP header equivalent of
// SubmitRequest.IdempotencyKey (header wins only when the body field
// is empty).
const IdempotencyHeader = "Idempotency-Key"

// ReplayedHeader marks a submit response that replayed an existing job
// for a repeated idempotency key ("true") instead of accepting a new
// one.
const ReplayedHeader = "Idempotency-Replayed"

// JobOptions mirrors the engine's functional options field by field.
// Pointer fields distinguish "absent, keep the default" from genuine
// zero values (alpha 0, decisive measure 0), exactly like the options
// themselves eliminate zero-value sentinels.
type JobOptions struct {
	Budget      *int     `json:"budget,omitempty"`
	Epsilon     *float64 `json:"epsilon,omitempty"`
	MaxLevel    *int     `json:"max_level,omitempty"`
	Decisive    *int     `json:"decisive,omitempty"`
	Theta       *float64 `json:"theta,omitempty"`
	Prune       *bool    `json:"prune,omitempty"`
	K           *int     `json:"k,omitempty"`
	Alpha       *float64 `json:"alpha,omitempty"`
	Seed        *int64   `json:"seed,omitempty"`
	Parallelism *int     `json:"parallelism,omitempty"`
}

// toOptions maps the wire options onto engine options; validation
// stays with the options themselves so wire and in-process callers get
// identical errors.
func (o *JobOptions) toOptions() []modis.Option {
	if o == nil {
		return nil
	}
	var opts []modis.Option
	if o.Budget != nil {
		opts = append(opts, modis.WithBudget(*o.Budget))
	}
	if o.Epsilon != nil {
		opts = append(opts, modis.WithEpsilon(*o.Epsilon))
	}
	if o.MaxLevel != nil {
		opts = append(opts, modis.WithMaxLevel(*o.MaxLevel))
	}
	if o.Decisive != nil {
		opts = append(opts, modis.WithDecisive(*o.Decisive))
	}
	if o.Theta != nil {
		opts = append(opts, modis.WithTheta(*o.Theta))
	}
	if o.Prune != nil && !*o.Prune {
		opts = append(opts, modis.WithoutPruning())
	}
	if o.K != nil {
		opts = append(opts, modis.WithK(*o.K))
	}
	if o.Alpha != nil {
		opts = append(opts, modis.WithAlpha(*o.Alpha))
	}
	if o.Seed != nil {
		opts = append(opts, modis.WithSeed(*o.Seed))
	}
	if o.Parallelism != nil {
		opts = append(opts, modis.WithParallelism(*o.Parallelism))
	}
	return opts
}

// Job states reported over the wire.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// JobStatus is the wire form of one job's state (GET /v1/jobs/{id},
// submit responses, and the JSONL status lines).
type JobStatus struct {
	JobID     string `json:"job_id"`
	Workload  string `json:"workload,omitempty"`
	Algorithm string `json:"algorithm"`
	// IdemKey is the idempotency key the job was submitted under, when
	// it carried one.
	IdemKey string `json:"idempotency_key,omitempty"`
	Status  string `json:"status"`
	// Error carries the terminal error of a failed or cancelled job.
	Error string `json:"error,omitempty"`
	// Progress is the most recent progress event of a running job.
	Progress *modis.Event `json:"progress,omitempty"`
	// Report is the result of a done job.
	Report *modis.Report `json:"report,omitempty"`
}

// statusOf snapshots a job record into its wire form. Archived
// records resolve their status from the ledger state and their report
// — when asked for and still readable — from the persistence store;
// a degraded disk degrades to a report-less status, never an error.
func (s *Scheduler) statusOf(rec *JobRecord) *JobStatus {
	st := &JobStatus{
		JobID:     rec.ID,
		Workload:  rec.Workload,
		Algorithm: rec.Algorithm,
		IdemKey:   rec.IdemKey,
	}
	job, arch := rec.snapshot()
	if arch != nil {
		st.Status = arch.status
		st.Error = arch.errMsg
		if arch.hasReport && s.opts.Persist != nil {
			if rep, ok := s.opts.Persist.ReadReport(rec.ID); ok {
				st.Report = rep
			}
		}
		return st
	}
	select {
	case <-job.Done():
		rep, err := job.Result()
		switch {
		case err == nil:
			st.Status = StatusDone
			st.Report = rep
		case errors.Is(err, context.Canceled):
			st.Status = StatusCancelled
			st.Error = err.Error()
		default:
			st.Status = StatusFailed
			st.Error = err.Error()
		}
	default:
		if job.Started() {
			st.Status = StatusRunning
		} else {
			st.Status = StatusQueued
		}
		if ev, ok := job.LastEvent(); ok {
			st.Progress = &ev
		}
	}
	return st
}

// Server exposes a Scheduler and a catalog of named workloads over
// HTTP:
//
//	POST   /v1/jobs             submit (SubmitRequest → JobStatus, 202)
//	GET    /v1/jobs             list accepted jobs (paginated: limit + cursor)
//	GET    /v1/jobs/{id}        status + report once done
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/jobs/{id}/events progress as server-sent events
//	GET    /v1/workloads        workload catalog
//	POST   /v1/workloads/{name}/rows append rows (AppendRowsRequest → AppendResponse)
//	GET    /v1/algorithms       registry keys
//	GET    /healthz             readiness
//	GET    /metrics             Prometheus text exposition
//
// Errors are JSON bodies {"error": "..."}: 400 for malformed requests,
// unknown algorithms (the body carries the registry's known-keys
// message verbatim) and invalid options, 404 for unknown workloads and
// jobs, 503 while draining. The same Server also speaks JSONL (see
// ServeJSONL). Jobs live on the server's own context, not the
// submitting request's, so they survive their submitter disconnecting;
// Close cancels them all.
type Server struct {
	sched *Scheduler
	opts  ServerOptions
	mux   *http.ServeMux
	ctx   context.Context
	stop  context.CancelFunc
}

// ServerOptions carry the node identity a Server advertises on
// /healthz — what the proxy's fleet view is built from. The zero value
// is fine for single-node serving.
type ServerOptions struct {
	// Advertise is the address peers should reach this node on
	// (host:port), echoed verbatim.
	Advertise string
}

// NewServer builds a Server over a scheduler; the workload catalog is
// the scheduler's registry, read live, so workloads registered after
// the server starts appear without a restart.
func NewServer(sched *Scheduler, opts ServerOptions) *Server {
	s := &Server{
		sched: sched,
		opts:  opts,
		mux:   http.NewServeMux(),
	}
	s.ctx, s.stop = context.WithCancel(context.Background())
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("POST /v1/workloads/{name}/rows", s.handleAppend)
	s.mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close cancels every job submitted through this server (their base
// context is the server's). Call after draining when shutting down
// hard.
func (s *Server) Close() { s.stop() }

// Submit runs one wire-form submission through the scheduler — shared
// by the HTTP and JSONL fronts. replayed reports that the request's
// idempotency key matched an already-accepted job and that job's
// record was returned instead of starting a new run. TimeoutMS bounds
// the job's whole life on the node — admission-queue wait included, so
// a request never runs past its propagated deadline budget at the
// engine.
func (s *Server) Submit(req SubmitRequest) (*JobRecord, bool, error) {
	ctx := s.ctx
	var cancel context.CancelFunc
	if req.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
	}
	rec, replayed, err := s.sched.SubmitKeyed(ctx, req.Workload, req.Algorithm, req.IdempotencyKey, req.Options.toOptions()...)
	if err != nil {
		if cancel != nil {
			cancel()
		}
		// Draining and overload are the retryable submit failures (503
		// with a pacing hint); an unknown workload is addressed to the
		// wrong node (404, the proxy's reroute cue); everything else —
		// unknown algorithm (the registry's typed error, known keys in
		// the message), invalid options — is the client's.
		status := http.StatusBadRequest
		var retryAfter time.Duration
		switch {
		case errors.Is(err, ErrOverloaded):
			status = http.StatusServiceUnavailable
			retryAfter = time.Second
		case errors.Is(err, ErrDraining):
			status = http.StatusServiceUnavailable
		case errors.Is(err, ErrUnknownWorkload):
			status = http.StatusNotFound
		}
		return nil, false, &wireError{status: status, msg: err.Error(), retryAfter: retryAfter}
	}
	if cancel != nil {
		if replayed {
			// The replayed job runs on its original deadline; this
			// retry's budget only covered getting the answer back.
			cancel()
		} else {
			job := rec.Live()
			go func() {
				<-job.Done()
				cancel()
			}()
		}
	}
	return rec, replayed, nil
}

// wireError pairs an error message with the HTTP status it should
// travel under, plus the Retry-After pacing hint for 503s.
type wireError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *wireError) Error() string { return e.msg }

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: malformed submit request: %w", err))
		return
	}
	if req.IdempotencyKey == "" {
		req.IdempotencyKey = r.Header.Get(IdempotencyHeader)
	}
	rec, replayed, err := s.Submit(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// A fresh acceptance is 202; a replay answers 200 — the submission
	// was already accepted, possibly long ago — and says so in a header
	// so retry layers can tell dedup from double-run.
	status := http.StatusAccepted
	if replayed {
		w.Header().Set(ReplayedHeader, "true")
		status = http.StatusOK
	}
	writeJSON(w, status, s.sched.statusOf(rec))
}

// JobsPageResponse is the paginated envelope of GET /v1/jobs.
// NextCursor, when non-empty, is the cursor query value of the next
// page.
type JobsPageResponse struct {
	Jobs       []*JobStatus `json:"jobs"`
	NextCursor string       `json:"next_cursor,omitempty"`
}

// handleList answers GET /v1/jobs?limit=N&cursor=<job id>: jobs in
// submission order, limit per page (default all), cursor the last id
// of the previous page. Keeping the page a summary — no reports —
// keeps listing a spilled multi-thousand-job ledger cheap.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: malformed limit %q", v))
			return
		}
		limit = n
	}
	recs, next := s.sched.JobsPage(r.URL.Query().Get("cursor"), limit)
	out := make([]*JobStatus, 0, len(recs))
	for _, rec := range recs {
		st := s.sched.statusOf(rec)
		st.Report = nil // list is a summary; fetch the job for the report
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, JobsPageResponse{Jobs: out, NextCursor: next})
}

func (s *Server) resolve(w http.ResponseWriter, r *http.Request) (*JobRecord, bool) {
	id := r.PathValue("id")
	rec, ok := s.sched.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", id))
		return nil, false
	}
	return rec, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.resolve(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.sched.statusOf(rec))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.resolve(w, r)
	if !ok {
		return
	}
	rec.Cancel() // archived records are already terminal; Cancel no-ops
	// Report the post-cancel state: a job cancelled here observes the
	// cancellation at valuation granularity, so Done may lag a moment.
	writeJSON(w, http.StatusOK, s.sched.statusOf(rec))
}

// handleEvents streams the job's progress events as server-sent
// events: one "progress" event per modis.Event — the same events, in
// the same order, an in-process WithProgress callback observes — and a
// final "end" event carrying the terminal JobStatus. Every progress
// event carries its stable index as the SSE id, and a reconnecting
// client's Last-Event-ID header resumes the stream right after the
// last event it saw instead of replaying from the start.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.resolve(w, r)
	if !ok {
		return
	}
	from := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: malformed Last-Event-ID %q", v))
			return
		}
		from = n + 1
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("serve: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	if job := rec.Live(); job != nil {
		id := from
		for ev := range job.EventsFrom(r.Context(), from) {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: progress\nid: %d\ndata: %s\n\n", id, data); err != nil {
				return
			}
			id++
			fl.Flush()
		}
	}
	// The stream drained: either the job finished (or was archived
	// long before this request) or the client went away. Send the
	// terminal status when there is one.
	select {
	case <-rec.Done():
		st := s.sched.statusOf(rec)
		st.Report = nil // the report travels over GET /v1/jobs/{id}
		data, err := json.Marshal(st)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: end\ndata: %s\n\n", data)
		fl.Flush()
	default:
	}
}

// HealthResponse is the healthz body. Status is "ok", or "degraded"
// when persistence is enabled but failing — the daemon still serves
// (state lives in memory); operators watch this field. Node carries
// the identity the proxy routes on: who this node is and which
// workload shards it holds.
type HealthResponse struct {
	Status      string             `json:"status"`
	Node        *NodeIdentity      `json:"node,omitempty"`
	Persistence *PersistenceHealth `json:"persistence,omitempty"`
}

// NodeIdentity is the healthz self-description of one daemon.
type NodeIdentity struct {
	// Advertise is the address peers reach this node on (empty when
	// the daemon was not told one).
	Advertise string `json:"advertise,omitempty"`
	// StateDir is the persistence root ("" when serving in-memory).
	StateDir string `json:"state_dir,omitempty"`
	// Shards lists the workload shards this node holds, by descriptor
	// hash.
	Shards []ShardInfo `json:"shards"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: "ok"}
	node := &NodeIdentity{Advertise: s.opts.Advertise, Shards: s.sched.Shards()}
	if p := s.sched.opts.Persist; p != nil {
		node.StateDir = p.opts.Dir
		h := p.Health()
		resp.Persistence = &h
		if !h.Healthy {
			resp.Status = "degraded"
		}
	}
	resp.Node = node
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves the node's Prometheus text exposition — the
// per-shard and node-global serving series documented in
// docs/serving.md.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	mw := metrics.NewWriter()
	s.sched.WriteMetrics(mw)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(mw.Bytes())
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.WorkloadInfos())
}

// handleAppend commits a row batch to the named workload's shard:
// rows are coerced against the universal schema, in-flight runs drain
// behind the shard's append gate, and the response reports the new
// table version plus what the versioned memo kept. Malformed rows and
// frozen-domain violations are 400; an unknown workload is 404 (the
// proxy's reroute cue); a draining scheduler or a shard that cannot
// quiesce within the drain bound is 503 (retryable, with a pacing
// hint).
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req AppendRowsRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: malformed append request: %w", err))
		return
	}
	schema, ok := s.sched.WorkloadSchema(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w %q", ErrUnknownWorkload, name))
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("serve: append requires at least one row"))
		return
	}
	rows := make([]table.Row, len(req.Rows))
	for i, raw := range req.Rows {
		row, err := decodeWireRow(schema, raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: append row %d: %w", i, err))
			return
		}
		rows[i] = row
	}
	res, err := s.sched.AppendRows(r.Context(), name, rows)
	if err != nil {
		status := http.StatusBadRequest
		var retryAfter time.Duration
		switch {
		case errors.Is(err, ErrOverloaded):
			status = http.StatusServiceUnavailable
			retryAfter = time.Second
		case errors.Is(err, ErrDraining):
			status = http.StatusServiceUnavailable
		case errors.Is(err, ErrUnknownWorkload):
			status = http.StatusNotFound
		}
		writeError(w, status, &wireError{status: status, msg: err.Error(), retryAfter: retryAfter})
		return
	}
	writeJSON(w, http.StatusOK, AppendResponse{
		Workload:        name,
		TableVersion:    res.Version,
		Rows:            res.Rows,
		TotalRows:       res.TotalRows,
		MemoInvalidated: res.Invalidated,
		MemoRetained:    res.Retained,
	})
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, modis.Algorithms())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, fallback int, err error) {
	status := fallback
	var we *wireError
	if errors.As(err, &we) {
		status = we.status
		if we.retryAfter > 0 {
			secs := int64(we.retryAfter / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		}
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
