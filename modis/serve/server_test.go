package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/modis"
	"repro/modis/serve"
)

func newTestServer(tb testing.TB, sleep time.Duration) (*serve.Server, *httptest.Server) {
	tb.Helper()
	sched := serve.NewScheduler(serve.SchedulerOptions{AlignWindow: 5 * time.Millisecond})
	registerShape(tb, sched, newShapeConfig(tb, sleep))
	srv := serve.NewServer(sched, serve.ServerOptions{})
	hs := httptest.NewServer(srv)
	tb.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, hs
}

func intp(v int) *int { return &v }

// TestDaemonEndToEnd is the wire acceptance test: submit over HTTP,
// stream SSE progress, fetch the report, and get the same skyline —
// and the same event sequence — as Engine.Run in-process.
func TestDaemonEndToEnd(t *testing.T) {
	ctx := context.Background()

	// In-process reference on an independent but identical config.
	var direct []modis.Event
	ref, err := modis.NewEngine(newShapeConfig(t, 0)).Run(ctx, "bi",
		append(runOpts(), modis.WithProgress(func(ev modis.Event) { direct = append(direct, ev) }))...)
	if err != nil {
		t.Fatal(err)
	}

	_, hs := newTestServer(t, 0)
	cl := serve.NewClient(hs.URL)

	if infos, err := cl.Workloads(ctx); err != nil || len(infos) != 1 || infos[0].Name != "shape" ||
		len(infos[0].Hash) != 64 || infos[0].Descriptor == nil || infos[0].Descriptor.Hash() != infos[0].Hash {
		t.Fatalf("workloads = (%+v, %v), want one self-consistent shape entry", infos, err)
	}
	if names, err := cl.Algorithms(ctx); err != nil || len(names) != 5 {
		t.Fatalf("algorithms = (%v, %v)", names, err)
	}

	st, err := cl.Submit(ctx, serve.SubmitRequest{
		Workload:  "shape",
		Algorithm: "bi",
		Options:   &serve.JobOptions{Epsilon: fp(0.15), MaxLevel: intp(3), Seed: i64p(2), K: intp(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.JobID == "" || st.Algorithm != "bi" || st.Workload != "shape" {
		t.Fatalf("accepted status malformed: %+v", st)
	}

	var streamed []modis.Event
	end, err := cl.Events(ctx, st.JobID, func(ev modis.Event) { streamed = append(streamed, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if end == nil || end.Status != serve.StatusDone {
		t.Fatalf("end event = %+v, want done", end)
	}
	if len(streamed) != len(direct) {
		t.Fatalf("SSE delivered %d events, in-process progress saw %d", len(streamed), len(direct))
	}
	for i := range direct {
		if streamed[i] != direct[i] {
			t.Fatalf("SSE event %d diverges: wire %+v in-process %+v", i, streamed[i], direct[i])
		}
	}

	final, err := cl.Status(ctx, st.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != serve.StatusDone || final.Report == nil {
		t.Fatalf("final status = %+v, want done with report", final)
	}
	if final.Report.JobID != st.JobID {
		t.Errorf("report JobID %q != job %q", final.Report.JobID, st.JobID)
	}
	wire, err := json.Marshal(final.Report.Skyline)
	if err != nil {
		t.Fatal(err)
	}
	if string(wire) != skylineJSON(t, ref) {
		t.Errorf("wire skyline diverges from in-process run\n in-process: %s\n wire:       %s",
			skylineJSON(t, ref), wire)
	}
}

func fp(v float64) *float64 { return &v }
func i64p(v int64) *int64   { return &v }

func TestDaemonCancelMidSearch(t *testing.T) {
	ctx := context.Background()
	_, hs := newTestServer(t, 2*time.Millisecond) // slow model, unbudgeted full space
	cl := serve.NewClient(hs.URL)
	st, err := cl.Submit(ctx, serve.SubmitRequest{Workload: "shape", Algorithm: "exact"})
	if err != nil {
		t.Fatal(err)
	}
	// Let it get into the search, then cancel and require prompt death.
	deadlineCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	for {
		got, err := cl.Status(deadlineCtx, st.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status == serve.StatusRunning {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := cl.Cancel(deadlineCtx, st.JobID); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Wait(deadlineCtx, st.JobID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != serve.StatusCancelled {
		t.Fatalf("status after cancel = %q (%s), want cancelled", got.Status, got.Error)
	}
	if !strings.Contains(got.Error, "context canceled") {
		t.Errorf("cancelled job error = %q", got.Error)
	}
}

func TestDaemonDeadlineExpiry(t *testing.T) {
	ctx := context.Background()
	_, hs := newTestServer(t, 2*time.Millisecond)
	cl := serve.NewClient(hs.URL)
	st, err := cl.Submit(ctx, serve.SubmitRequest{Workload: "shape", Algorithm: "exact", TimeoutMS: 30})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Wait(ctx, st.JobID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != serve.StatusFailed || !strings.Contains(got.Error, "deadline") {
		t.Fatalf("expired job = %q (%s), want failed with deadline error", got.Status, got.Error)
	}
}

func TestDaemonErrorMapping(t *testing.T) {
	ctx := context.Background()
	_, hs := newTestServer(t, 0)
	cl := serve.NewClient(hs.URL)

	// Unknown algorithm → 400, body carrying the registry's message
	// verbatim (the known keys included).
	inProc := modis.NewEngine(newShapeConfig(t, 0))
	_, wantErr := inProc.Run(ctx, "annealing")
	_, err := cl.Submit(ctx, serve.SubmitRequest{Workload: "shape", Algorithm: "annealing"})
	if err == nil {
		t.Fatal("unknown algorithm must fail")
	}
	if !strings.Contains(err.Error(), "400") || !strings.Contains(err.Error(), wantErr.Error()) {
		t.Errorf("daemon error %q must be HTTP 400 carrying %q", err, wantErr)
	}

	// Unknown workload → 404 naming the catalog.
	if _, err := cl.Submit(ctx, serve.SubmitRequest{Workload: "nope", Algorithm: "bi"}); err == nil ||
		!strings.Contains(err.Error(), "404") || !strings.Contains(err.Error(), "shape") {
		t.Errorf("unknown workload error = %v", err)
	}

	// Invalid option → 400 with the option's own message.
	if _, err := cl.Submit(ctx, serve.SubmitRequest{
		Workload: "shape", Algorithm: "bi",
		Options: &serve.JobOptions{Epsilon: fp(-1)},
	}); err == nil || !strings.Contains(err.Error(), "400") || !strings.Contains(err.Error(), "epsilon") {
		t.Errorf("invalid option error = %v", err)
	}

	// Unknown job id → 404.
	if _, err := cl.Status(ctx, "job-unknown"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown job error = %v", err)
	}
}

// TestDaemonConcurrentSubmits hammers one daemon over HTTP from many
// goroutines; run under -race in CI.
func TestDaemonConcurrentSubmits(t *testing.T) {
	ctx := context.Background()
	_, hs := newTestServer(t, 0)
	cl := serve.NewClient(hs.URL)
	algos := []string{"apx", "bi", "nobi", "div", "exact", "bi", "apx", "nobi"}
	var wg sync.WaitGroup
	errs := make([]error, len(algos))
	for i, algo := range algos {
		wg.Add(1)
		go func(i int, algo string) {
			defer wg.Done()
			st, err := cl.Submit(ctx, serve.SubmitRequest{
				Workload: "shape", Algorithm: algo,
				Options: &serve.JobOptions{Epsilon: fp(0.15), MaxLevel: intp(3), Seed: i64p(2), K: intp(3)},
			})
			if err != nil {
				errs[i] = err
				return
			}
			got, err := cl.Wait(ctx, st.JobID, 5*time.Millisecond)
			if err == nil && got.Status != serve.StatusDone {
				err = &jobFailed{got}
			}
			errs[i] = err
		}(i, algo)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("concurrent submit %d (%s): %v", i, algos[i], err)
		}
	}
}

type jobFailed struct{ st *serve.JobStatus }

func (e *jobFailed) Error() string { return "job ended " + e.st.Status + ": " + e.st.Error }

// TestJSONLCancelUnblocksIdleReader: cancelling the serving context
// must end ServeJSONL even while the input reader is blocked with no
// pending line — modisd's SIGTERM path in -jsonl mode.
func TestJSONLCancelUnblocksIdleReader(t *testing.T) {
	srv, _ := newTestServer(t, 0)
	pr, pw := io.Pipe() // never written: the reader blocks forever
	defer pw.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeJSONL(ctx, pr, io.Discard) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("ServeJSONL returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeJSONL still blocked after cancel")
	}
}

func TestJSONLProtocol(t *testing.T) {
	srv, _ := newTestServer(t, 0)
	var in bytes.Buffer
	reqs := []serve.JSONLRequest{
		{Op: "algorithms", Tag: "a"},
		{Op: "workloads", Tag: "w"},
		{Op: "submit", Tag: "run1", Stream: true, SubmitRequest: serve.SubmitRequest{
			Workload: "shape", Algorithm: "bi",
			Options: &serve.JobOptions{Epsilon: fp(0.15), MaxLevel: intp(3), Seed: i64p(2), K: intp(3)},
		}},
		{Op: "nonsense", Tag: "x"},
	}
	enc := json.NewEncoder(&in)
	for _, r := range reqs {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	if err := srv.ServeJSONL(context.Background(), &in, &out); err != nil {
		t.Fatal(err)
	}

	byKind := map[string][]serve.JSONLResponse{}
	dec := json.NewDecoder(&out)
	for {
		var resp serve.JSONLResponse
		if err := dec.Decode(&resp); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		byKind[resp.Kind] = append(byKind[resp.Kind], resp)
	}
	if got := byKind["algorithms"]; len(got) != 1 || len(got[0].Names) != 5 || got[0].Tag != "a" {
		t.Errorf("algorithms lines = %+v", got)
	}
	if got := byKind["workloads"]; len(got) != 1 || len(got[0].Names) != 1 {
		t.Errorf("workloads lines = %+v", got)
	}
	if got := byKind["accepted"]; len(got) != 1 || got[0].JobID == "" || got[0].Tag != "run1" {
		t.Fatalf("accepted lines = %+v", got)
	}
	if got := byKind["event"]; len(got) < 2 || !got[len(got)-1].Event.Done {
		t.Errorf("event lines = %d, want streamed progress ending Done", len(got))
	}
	results := byKind["result"]
	if len(results) != 1 || results[0].Status == nil || results[0].Status.Status != serve.StatusDone ||
		results[0].Status.Report == nil || len(results[0].Status.Report.Skyline) == 0 {
		t.Fatalf("result lines = %+v", results)
	}
	if len(byKind["error"]) != 1 || byKind["error"][0].Tag != "x" {
		t.Errorf("error lines = %+v", byKind["error"])
	}
}
