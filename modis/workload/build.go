package workload

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/datagen"
	"repro/internal/fst"
	"repro/internal/table"
)

// Built couples a constructed workload's descriptor with its runnable
// configuration — what a daemon registers with its scheduler.
type Built struct {
	Desc *Descriptor
	Cfg  *fst.Config
}

// taskBuilders are the built-in paper workloads constructible by name.
var taskBuilders = map[string]func(rows int) *datagen.Workload{
	"t1": func(rows int) *datagen.Workload { return datagen.T1Movie(datagen.TaskConfig{Rows: rows}) },
	"t2": func(rows int) *datagen.Workload { return datagen.T2House(datagen.TaskConfig{Rows: rows}) },
	"t3": func(rows int) *datagen.Workload { return datagen.T3Avocado(datagen.TaskConfig{Rows: rows}) },
	"t4": func(rows int) *datagen.Workload { return datagen.T4Mental(datagen.TaskConfig{Rows: rows}) },
	"t5": func(rows int) *datagen.Workload {
		return datagen.T5Link(datagen.T5Config{Users: rows / 4, Items: rows / 8})
	},
}

// Tasks lists the built-in task names, sorted.
func Tasks() []string {
	out := make([]string, 0, len(taskBuilders))
	for name := range taskBuilders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// BuildTask constructs a built-in paper workload (t1–t5) at the given
// row scale (0 = task default) and returns it with its descriptor. The
// generators are seeded and deterministic, so any two processes
// building the same task at the same scale produce byte-identical
// tables — and therefore the same descriptor hash.
func BuildTask(task string, rows int, surrogate bool) (*Built, error) {
	name := strings.ToLower(strings.TrimSpace(task))
	build, ok := taskBuilders[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown task %q (known: %s)", task, strings.Join(Tasks(), ", "))
	}
	w := build(rows)
	cfg := w.NewConfig(surrogate)
	d, err := Describe(name, cfg)
	if err != nil {
		return nil, err
	}
	d.Task = name
	d.Rows = rows
	if d.Rows == 0 {
		d.Rows = w.Lake.Config.Rows
	}
	for _, t := range w.Lake.Tables {
		d.Tables = append(d.Tables, DigestTable(t))
	}
	d.Encoder.AdomK = w.Lake.Config.AdomK
	return &Built{Desc: d, Cfg: cfg}, nil
}

// CustomOptions parameterize a CSV-backed custom workload.
type CustomOptions struct {
	// Name is the catalog display name (default "custom").
	Name string
	// Target is the attribute the model predicts.
	Target string
	// Model selects the learner family: "gbm", "forest", "histgbm",
	// "linear", "logistic" ("" = gbm).
	Model string
	// Classes overrides the derived class count for classification.
	Classes int
	// AdomK bounds the per-attribute literal count (default 8).
	AdomK int
	// Protected lists attributes no operator may mask.
	Protected []string
	// Surrogate enables the MO-GBM estimator.
	Surrogate bool
}

// FromTables constructs a custom workload over user tables (the
// modisd -tables path) and returns it with its descriptor. Identity is
// content-addressed: the same CSV bytes loaded on two nodes — under
// any file names — produce the same hash.
func FromTables(tables []*table.Table, o CustomOptions) (*Built, error) {
	w, err := datagen.NewCustomWorkload(datagen.CustomConfig{
		Tables:    tables,
		Target:    o.Target,
		ModelKind: o.Model,
		Classes:   o.Classes,
		AdomK:     o.AdomK,
		Protected: o.Protected,
	})
	if err != nil {
		return nil, err
	}
	cfg := w.NewConfig(o.Surrogate)
	name := o.Name
	if name == "" {
		name = "custom"
	}
	d, err := Describe(name, cfg)
	if err != nil {
		return nil, err
	}
	d.Task = "custom"
	for _, t := range tables {
		d.Tables = append(d.Tables, DigestTable(t))
	}
	d.Encoder.AdomK = w.Lake.Config.AdomK
	return &Built{Desc: d, Cfg: cfg}, nil
}
