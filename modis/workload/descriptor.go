// Package workload defines the canonical serialized identity of a
// discovery workload: a [Descriptor] captures everything that
// determines a workload's search behavior — source tables, universal
// schema, task, model family, measures, encoder options, UDF registry
// fingerprint — and hashes it into a stable content address
// ([Descriptor.Hash]). The hash is what the fleet routes on: the
// serving scheduler keys engines, batchers, and persisted state by it
// (state-dir/<hash>/…), and the modisproxy consistent-hashes it across
// nodes, so two daemons that build the same workload agree on its
// identity without sharing a process.
//
// The hash contract: it is computed from the parsed, normalized
// descriptor — never from raw JSON bytes — so it is invariant under
// JSON field-order permutations and whitespace; the display Name is
// excluded, set-valued fields (encoder skip/protected lists) are
// sorted, and order-significant fields (measures, attributes, tables)
// are hashed as given. Descriptors built by the same constructor from
// the same inputs hash identically across processes and restarts.
package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"slices"

	"repro/internal/fst"
	"repro/internal/table"
)

// Version is the current descriptor format version. Parsing rejects
// descriptors from a newer format rather than mis-hashing them.
const Version = 1

// TableDigest is the content address of one source table: its shape
// and a SHA-256 over schema and cells (the table's display name is
// excluded, so renaming a CSV file does not change workload identity).
type TableDigest struct {
	Name string `json:"name,omitempty"`
	Rows int    `json:"rows"`
	Cols int    `json:"cols"`
	SHA  string `json:"sha256"`
}

// EncoderOptions are the space/encoder knobs that shape the search
// space and therefore belong to workload identity.
type EncoderOptions struct {
	// AdomK caps the cluster literals derived per attribute.
	AdomK int `json:"adom_k,omitempty"`
	// SkipLiterals lists attributes contributing no literal entries
	// (set semantics: sorted before hashing).
	SkipLiterals []string `json:"skip_literals,omitempty"`
	// Protected lists attributes no operator may mask (set semantics).
	Protected []string `json:"protected,omitempty"`
}

// SurrogateOptions fingerprint the estimator schedule, which changes
// which states are valuated exactly and is therefore identity.
type SurrogateOptions struct {
	WarmupExact int `json:"warmup_exact"`
	ExactEvery  int `json:"exact_every"`
}

// Descriptor is the canonical serialized form of one workload. Field
// order below is the canonical JSON field order (encoding/json emits
// struct fields in declaration order); Hash depends on it staying
// append-only.
type Descriptor struct {
	// Version is the descriptor format version (always [Version]).
	Version int `json:"version"`
	// Name is the catalog display name. It is excluded from the hash:
	// two fleets may expose the same workload under different names and
	// still share shard identity.
	Name string `json:"name,omitempty"`
	// Task identifies the constructor: "t1".."t5" for built-in paper
	// tasks, "custom" for CSV-backed workloads, "inline" for
	// descriptors derived from an already-built config.
	Task string `json:"task"`
	// Rows is the task's row scale (built-in tasks; 0 where the
	// constructor has no row knob).
	Rows int `json:"rows,omitempty"`
	// Tables digests the source tables D, in construction order.
	Tables []TableDigest `json:"tables,omitempty"`
	// Universal digests the compressed universal table D_U the search
	// actually runs over — the strongest single identity component.
	Universal TableDigest `json:"universal"`
	// Attributes lists the universal non-target columns as
	// "name:kind", in schema order (order is significant: it fixes the
	// bitmap entry layout).
	Attributes []string `json:"attributes"`
	// Target is the attribute the task model predicts.
	Target string `json:"target"`
	// Model names the task model family.
	Model string `json:"model"`
	// Measures lists the measure names in vector order (order is
	// significant: it is the skyline vector layout).
	Measures []string `json:"measures"`
	// Encoder carries the space/encoder options.
	Encoder EncoderOptions `json:"encoder"`
	// Surrogate is nil when every valuation is exact.
	Surrogate *SurrogateOptions `json:"surrogate,omitempty"`
	// UDFs fingerprints the registered post-materialization operators,
	// in registration order (order is significant: UDFs compose).
	UDFs []string `json:"udfs,omitempty"`
}

// normalized returns the canonical copy the hash is computed over:
// display name zeroed, set-valued fields sorted. Slices are copied
// before sorting; the receiver is never mutated.
func (d *Descriptor) normalized() Descriptor {
	out := *d
	out.Name = ""
	out.Encoder.SkipLiterals = sortedCopy(d.Encoder.SkipLiterals)
	out.Encoder.Protected = sortedCopy(d.Encoder.Protected)
	return out
}

func sortedCopy(xs []string) []string {
	if len(xs) == 0 {
		return nil
	}
	out := slices.Clone(xs)
	slices.Sort(out)
	return out
}

// CanonicalJSON renders the normalized descriptor in canonical byte
// form — the hash input, and the structural-equality witness behind
// the scheduler's hash-collision guard.
func (d *Descriptor) CanonicalJSON() []byte {
	blob, err := json.Marshal(d.normalized())
	if err != nil {
		// A Descriptor is plain data; Marshal cannot fail on one.
		panic(fmt.Sprintf("workload: canonical marshal: %v", err))
	}
	return blob
}

// Hash returns the workload's stable content address: the hex SHA-256
// of the canonical JSON. Equal descriptors — under any JSON field
// order, any display name — hash equally.
func (d *Descriptor) Hash() string {
	sum := sha256.Sum256(d.CanonicalJSON())
	return hex.EncodeToString(sum[:])
}

// Short returns the 12-character hash prefix used in logs and
// directory listings.
func (d *Descriptor) Short() string { return d.Hash()[:12] }

// Marshal renders the descriptor as JSON (display fields included).
func (d *Descriptor) Marshal() ([]byte, error) { return json.Marshal(d) }

// Parse decodes a descriptor from JSON, in any field order, and
// validates the format version.
func Parse(blob []byte) (*Descriptor, error) {
	var d Descriptor
	if err := json.Unmarshal(blob, &d); err != nil {
		return nil, fmt.Errorf("workload: malformed descriptor: %w", err)
	}
	if d.Version != Version {
		return nil, fmt.Errorf("workload: descriptor version %d not supported (this build speaks %d)", d.Version, Version)
	}
	return &d, nil
}

// Equal reports structural equality of workload identity: same
// canonical form, hence same hash.
func (d *Descriptor) Equal(o *Descriptor) bool {
	return string(d.CanonicalJSON()) == string(o.CanonicalJSON())
}

// DigestTable content-addresses a table: SHA-256 over the schema
// (names and kinds) and every cell in row order, using the cells'
// canonical keys so numerically equal int/float cells digest equally.
// The table's display name is excluded.
func DigestTable(t *table.Table) TableDigest {
	h := sha256.New()
	for _, c := range t.Schema {
		h.Write([]byte(c.Name))
		h.Write([]byte{0x00, byte(c.Kind), 0x1f})
	}
	h.Write([]byte{0x1e})
	for _, r := range t.Rows {
		for _, v := range r {
			h.Write([]byte(v.Key()))
			h.Write([]byte{0x1f})
		}
		h.Write([]byte{0x1e})
	}
	return TableDigest{
		Name: t.Name,
		Rows: t.NumRows(),
		Cols: t.NumCols(),
		SHA:  hex.EncodeToString(h.Sum(nil)),
	}
}

// Describe derives a descriptor from an assembled configuration: the
// universal table is digested, the space's skip/protected structure is
// read back from its entry layout, and the model, measures, and
// surrogate schedule are fingerprinted. Task is "inline" — callers
// that built the config through a named constructor overlay Task,
// Rows, Tables, and AdomK themselves (BuildTask and FromTables do).
//
// Deriving from the built config is what makes fleet identity work:
// two nodes that construct the same workload independently produce the
// same descriptor, hence the same hash, without exchanging bytes.
func Describe(name string, cfg *fst.Config) (*Descriptor, error) {
	if cfg == nil || cfg.Space == nil || cfg.Space.Universal == nil {
		return nil, fmt.Errorf("workload: config has no space to describe")
	}
	sp := cfg.Space
	u := sp.Universal
	d := &Descriptor{
		Version:   Version,
		Name:      name,
		Task:      "inline",
		Universal: DigestTable(u),
		Target:    sp.Target,
	}
	for _, c := range u.Schema {
		if c.Name == sp.Target {
			continue
		}
		d.Attributes = append(d.Attributes, c.Name+":"+c.Kind.String())
		if sp.AttrEntry(c.Name) < 0 {
			d.Encoder.Protected = append(d.Encoder.Protected, c.Name)
		}
		if len(sp.LiteralEntries(c.Name)) == 0 {
			d.Encoder.SkipLiterals = append(d.Encoder.SkipLiterals, c.Name)
		}
	}
	if cfg.Model != nil {
		d.Model = cfg.Model.Name()
	}
	for _, m := range cfg.Measures {
		d.Measures = append(d.Measures, m.Name)
	}
	if cfg.Est != nil {
		d.Surrogate = &SurrogateOptions{WarmupExact: cfg.WarmupExact, ExactEvery: cfg.ExactEvery}
	}
	// UDFs carry no names of their own; fingerprint their count so a
	// config with post-materialization operators never aliases one
	// without. Constructors that know their UDFs by name overlay this.
	for i := 0; i < sp.UDFCount(); i++ {
		d.UDFs = append(d.UDFs, fmt.Sprintf("udf#%d", i))
	}
	return d, nil
}
