package workload

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// fixture returns a fully-populated descriptor with every field class
// exercised: ordered slices, set-valued slices, nested structs, an
// optional pointer.
func fixture() *Descriptor {
	return &Descriptor{
		Version: Version,
		Name:    "display-name",
		Task:    "custom",
		Rows:    360,
		Tables: []TableDigest{
			{Name: "a.csv", Rows: 100, Cols: 3, SHA: "aa11"},
			{Name: "b.csv", Rows: 50, Cols: 2, SHA: "bb22"},
		},
		Universal:  TableDigest{Name: "D_U", Rows: 120, Cols: 4, SHA: "cc33"},
		Attributes: []string{"a:float", "b:int", "c:string"},
		Target:     "y",
		Model:      "GBmovie",
		Measures:   []string{"pAcc", "pTrain"},
		Encoder: EncoderOptions{
			AdomK:        4,
			SkipLiterals: []string{"id", "aux"},
			Protected:    []string{"id"},
		},
		Surrogate: &SurrogateOptions{WarmupExact: 9, ExactEvery: 4},
		UDFs:      []string{"impute-means", "drop-sparse"},
	}
}

// TestHashGolden pins the hash function itself: a fixed descriptor must
// hash to the same address in every process, on every platform, in
// every future build — the restart-stability half of the contract. If
// this test ever fails, the descriptor format changed and Version must
// be bumped (existing state directories would otherwise orphan).
func TestHashGolden(t *testing.T) {
	const want = "08b88e5b41d20fb7de944bdc0718113df6196183fa38d469db062f8cbdc0e6f7"
	if got := fixture().Hash(); got != want {
		t.Fatalf("fixture hash = %s, want %s (format drifted: bump workload.Version)", got, want)
	}
}

// TestHashIgnoresDisplayName: renaming a catalog entry must not move
// its shard.
func TestHashIgnoresDisplayName(t *testing.T) {
	a, b := fixture(), fixture()
	b.Name = "entirely-different"
	if a.Hash() != b.Hash() {
		t.Fatal("display name leaked into the hash")
	}
	b.Name = ""
	if a.Hash() != b.Hash() {
		t.Fatal("empty display name changed the hash")
	}
}

// TestHashSetSemantics: the skip/protected lists are sets — their
// order must not matter; their content must.
func TestHashSetSemantics(t *testing.T) {
	a, b := fixture(), fixture()
	b.Encoder.SkipLiterals = []string{"aux", "id"} // reordered
	if a.Hash() != b.Hash() {
		t.Fatal("skip-literal order changed the hash; the field is a set")
	}
	b.Encoder.SkipLiterals = []string{"aux"}
	if a.Hash() == b.Hash() {
		t.Fatal("skip-literal content did not change the hash")
	}
}

// TestHashSensitivity: every identity-bearing field must move the
// hash when it changes — ordered fields on reorder too.
func TestHashSensitivity(t *testing.T) {
	base := fixture().Hash()
	for name, mutate := range map[string]func(*Descriptor){
		"task":            func(d *Descriptor) { d.Task = "t1" },
		"rows":            func(d *Descriptor) { d.Rows = 999 },
		"table sha":       func(d *Descriptor) { d.Tables[0].SHA = "ff00" },
		"universal sha":   func(d *Descriptor) { d.Universal.SHA = "ff00" },
		"attribute order": func(d *Descriptor) { d.Attributes[0], d.Attributes[1] = d.Attributes[1], d.Attributes[0] },
		"target":          func(d *Descriptor) { d.Target = "z" },
		"model":           func(d *Descriptor) { d.Model = "other" },
		"measure order":   func(d *Descriptor) { d.Measures[0], d.Measures[1] = d.Measures[1], d.Measures[0] },
		"adom k":          func(d *Descriptor) { d.Encoder.AdomK = 30 },
		"protected":       func(d *Descriptor) { d.Encoder.Protected = nil },
		"surrogate off":   func(d *Descriptor) { d.Surrogate = nil },
		"surrogate knobs": func(d *Descriptor) { d.Surrogate.ExactEvery = 16 },
		"udf order":       func(d *Descriptor) { d.UDFs[0], d.UDFs[1] = d.UDFs[1], d.UDFs[0] },
	} {
		d := fixture()
		mutate(d)
		if d.Hash() == base {
			t.Errorf("%s: mutation did not change the hash", name)
		}
	}
}

// TestRoundTrip: Marshal → Parse reproduces the descriptor and its
// hash exactly.
func TestRoundTrip(t *testing.T) {
	d := fixture()
	blob, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Fatalf("round trip diverged:\n in: %+v\nout: %+v", d, got)
	}
	if d.Hash() != got.Hash() {
		t.Fatal("round trip changed the hash")
	}
}

// renderShuffled re-renders a decoded JSON value with object keys in
// rng-shuffled order — a genuine field-order permutation at every
// nesting level.
func renderShuffled(v any, rng *rand.Rand) string {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			kb, _ := json.Marshal(k)
			parts = append(parts, string(kb)+":"+renderShuffled(x[k], rng))
		}
		return "{" + strings.Join(parts, ",") + "}"
	case []any:
		parts := make([]string, 0, len(x))
		for _, e := range x {
			parts = append(parts, renderShuffled(e, rng))
		}
		return "[" + strings.Join(parts, ",") + "]"
	default:
		b, _ := json.Marshal(x)
		return string(b)
	}
}

// TestHashFieldOrderPermutation is the property test of the hash
// contract: any JSON field-order permutation of a descriptor parses to
// the same hash, because the hash is computed from the parsed struct,
// never from the bytes.
func TestHashFieldOrderPermutation(t *testing.T) {
	d := fixture()
	want := d.Hash()
	blob, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var decoded any
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 32; seed++ {
		permuted := renderShuffled(decoded, rand.New(rand.NewSource(seed)))
		got, err := Parse([]byte(permuted))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.Hash() != want {
			t.Fatalf("seed %d: permuted field order changed the hash\n json: %s", seed, permuted)
		}
	}
}

// TestVersionGate: a descriptor from a future format is rejected, not
// mis-hashed.
func TestVersionGate(t *testing.T) {
	d := fixture()
	d.Version = Version + 1
	blob, _ := d.Marshal()
	if _, err := Parse(blob); err == nil {
		t.Fatal("future-version descriptor parsed")
	}
}

// TestBuildTaskDeterministic: the built-in constructors are the
// cross-process identity path — two independent builds of the same
// task at the same scale must produce equal descriptors, and different
// tasks or scales must not collide.
func TestBuildTaskDeterministic(t *testing.T) {
	a, err := BuildTask("t3", 120, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildTask("t3", 120, true)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Desc.Equal(b.Desc) || a.Desc.Hash() != b.Desc.Hash() {
		t.Fatal("two builds of t3@120 disagree on identity")
	}
	if c, _ := BuildTask("t3", 140, true); c.Desc.Hash() == a.Desc.Hash() {
		t.Fatal("t3@120 and t3@140 collide")
	}
	if c, _ := BuildTask("t1", 120, true); c.Desc.Hash() == a.Desc.Hash() {
		t.Fatal("t1 and t3 collide")
	}
	if c, _ := BuildTask("t3", 120, false); c.Desc.Hash() == a.Desc.Hash() {
		t.Fatal("surrogate on/off collide")
	}
	if _, err := BuildTask("t9", 0, true); err == nil {
		t.Fatal("unknown task built")
	}
}

// TestDescribeReadsSpaceStructure: Describe must recover the encoder
// structure from the space's entry layout.
func TestDescribeReadsSpaceStructure(t *testing.T) {
	b, err := BuildTask("t1", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	d := b.Desc
	if d.Task != "t1" || d.Rows == 0 || len(d.Tables) == 0 {
		t.Fatalf("t1 descriptor incomplete: %+v", d)
	}
	hasID := func(xs []string) bool {
		for _, x := range xs {
			if x == "id" {
				return true
			}
		}
		return false
	}
	if !hasID(d.Encoder.SkipLiterals) || !hasID(d.Encoder.Protected) {
		t.Fatalf("t1 id column not recovered as skip+protected: %+v", d.Encoder)
	}
	if d.Surrogate != nil {
		t.Fatal("surrogate fingerprint present on an exact-only config")
	}
	if d.Target == "" || d.Model == "" || len(d.Measures) == 0 || d.Universal.SHA == "" {
		t.Fatalf("descriptor missing core identity fields: %+v", d)
	}
}
