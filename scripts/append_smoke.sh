#!/usr/bin/env bash
# Append smoke: streaming discovery against one modisd node, end to end.
#
# Phase 1 drives the versioned-append lifecycle by hand: submit a job,
# resubmit it to pin the warm-memo baseline (an identical rerun
# valuates nothing), POST a row batch to the workload, and assert the
# table version moved everywhere it is reported (append response,
# catalog, /metrics) and that the post-append resubmission actually
# re-ran — nonzero valuated against the grown table, then back to a
# full memo answer on the next identical run.
#
# Phase 2 lets cmd/modisload mix appends into closed-loop traffic
# (-append-every) and asserts the capture's post-append memo hit rate
# is positive: states the appends did not touch keep answering from
# the memo while rows stream in. See docs/serving.md, "Streaming
# appends".
set -euo pipefail

MODISD=${MODISD:-/tmp/modisd}
MODISLOAD=${MODISLOAD:-/tmp/modisload}
ADDR=${ADDR:-127.0.0.1:9965}
DURATION=${DURATION:-20s}
OUT=${OUT:-/tmp/append_smoke_capture.json}
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

"$MODISD" -addr "$ADDR" -tasks t3 -rows 120 &
PIDS+=($!)

for _ in $(seq 1 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null && break
  sleep 0.2
done
curl -sf "http://$ADDR/healthz" >/dev/null

# submit_wait <out-file>: one fixed t3 search, polled to "done".
SUBMIT_BODY='{"workload":"t3","algorithm":"bi","options":{"epsilon":0.15,"max_level":2,"seed":2},"timeout_ms":120000}'
submit_wait() {
  local out=$1 job
  job=$(curl -sf -X POST "http://$ADDR/v1/jobs" -d "$SUBMIT_BODY" |
    grep -o '"job_id":"[^"]*"' | head -1 | cut -d'"' -f4)
  test -n "$job"
  for _ in $(seq 1 300); do
    curl -sf -o "$out" "http://$ADDR/v1/jobs/$job"
    grep -q '"status":"done"' "$out" && return 0
    if grep -qE '"status":"(failed|cancelled)"' "$out"; then cat "$out" >&2; return 1; fi
    sleep 0.2
  done
  echo "job $job did not finish" >&2
  return 1
}
valuated_of() { grep -o '"valuated":[0-9]*' "$1" | head -1 | cut -d: -f2; }

submit_wait /tmp/append_cold.json
COLD=$(valuated_of /tmp/append_cold.json)
test "$COLD" -gt 0

# An identical resubmission answers entirely from the memo.
submit_wait /tmp/append_warm.json
WARM=$(valuated_of /tmp/append_warm.json)
if [ "$WARM" != "0" ]; then
  echo "pre-append resubmit valuated $WARM states, want 0 (memo baseline)" >&2
  exit 1
fi

# Append two rows (object form; absent columns are null — valid for
# any schema) and check the version the response reports.
curl -sf -X POST "http://$ADDR/v1/workloads/t3/rows" \
  -d '{"rows":[{},{}]}' | tee /tmp/append_resp.json
echo
grep -q '"table_version":1' /tmp/append_resp.json
grep -q '"rows":2' /tmp/append_resp.json
TOTAL=$(grep -o '"total_rows":[0-9]*' /tmp/append_resp.json | head -1 | cut -d: -f2)
test -n "$TOTAL"

# The catalog and /metrics agree on the new version and row count.
curl -sf "http://$ADDR/v1/workloads" | tee /tmp/append_catalog.json |
  grep -q '"table_version":1'
grep -q "\"rows\":$TOTAL" /tmp/append_catalog.json
METRICS=$(curl -sf "http://$ADDR/metrics")
echo "$METRICS" | grep '^modis_appends_total' | grep -q ' 1$'
echo "$METRICS" | grep '^modis_rows_appended_total' | grep -q ' 2$'
echo "$METRICS" | grep '^modis_table_version' | grep -q ' 1$'

# The same submission now differs: the append invalidated memo entries,
# so the report re-valuates against the grown table...
submit_wait /tmp/append_after.json
AFTER=$(valuated_of /tmp/append_after.json)
if [ "$AFTER" -le 0 ]; then
  echo "post-append resubmit valuated $AFTER states, want > 0 (report must differ)" >&2
  exit 1
fi
# ...and once re-memoized, the next identical run is warm again.
submit_wait /tmp/append_rewarm.json
REWARM=$(valuated_of /tmp/append_rewarm.json)
if [ "$REWARM" != "0" ]; then
  echo "re-warmed resubmit valuated $REWARM states, want 0" >&2
  exit 1
fi
echo "append lifecycle: cold=$COLD warm=$WARM after-append=$AFTER rewarm=$REWARM" >&2

# Phase 2: appends mixed into closed-loop load. The capture's
# post-append memo hit rate must be positive — streaming rows does not
# stop unaffected states from answering out of the memo.
"$MODISLOAD" -addr "$ADDR" -clients 4 -duration "$DURATION" \
  -budget 60 -max-level 2 -append-every 5 -append-batch 2 \
  -assert-memo-hits -out "$OUT"

# The capture is pretty-printed; allow whitespace after the colon.
APPENDS=$(grep -o '"attempts": *[0-9]*' "$OUT" | head -1 | grep -o '[0-9]*$')
if [ -z "$APPENDS" ] || [ "$APPENDS" -le 0 ]; then
  echo "load phase made no appends" >&2
  exit 1
fi
HIT_RATE=$(grep -o '"post_append_memo_hit_rate": *[0-9.eE+-]*' "$OUT" | head -1 | sed 's/.*: *//')
if [ -z "$HIT_RATE" ] || ! awk -v r="$HIT_RATE" 'BEGIN { exit !(r > 0) }'; then
  echo "post-append memo hit rate = ${HIT_RATE:-missing}, want > 0" >&2
  exit 1
fi
echo "append smoke passed; $APPENDS appends, post-append memo hit rate $HIT_RATE; capture at $OUT" >&2
