#!/usr/bin/env bash
# Chaos smoke: the scripted fault harness against a real 2-node fleet.
#
# Builds modisd and modischaos, then runs every chaos scenario —
# fault-free baseline, dropped connections, slow paths, mid-stream
# resets, and a SIGKILLed owner warm-restarting from its state
# directory — and checks the resilience invariants through the routing
# proxy: no accepted job lost, at most one completed job per
# idempotency key fleet-wide, every skyline byte-identical to the
# fault-free reference, and a warm resubmission making zero exact
# inferences. See docs/serving.md, "Fleet resilience".
set -euo pipefail

MODISD=${MODISD:-/tmp/modisd}
MODISCHAOS=${MODISCHAOS:-/tmp/modischaos}

if [ ! -x "$MODISD" ]; then
  go build -o "$MODISD" ./cmd/modisd
fi
if [ ! -x "$MODISCHAOS" ]; then
  go build -o "$MODISCHAOS" ./cmd/modischaos
fi

"$MODISCHAOS" -modisd "$MODISD" "$@"

echo "chaos smoke: OK"
