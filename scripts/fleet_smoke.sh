#!/usr/bin/env bash
# Fleet smoke: two modisd nodes behind one modisproxy.
#
# Exercises the multi-node serving loop end to end: both nodes serve
# the same two workloads, the proxy consistent-hashes each workload's
# descriptor hash to an owner, jobs for the two workloads land on
# distinct nodes (asserted via shard job counts in each node's
# /healthz), and after the owner of one shard is SIGKILLed a
# resubmission through the proxy reroutes to the survivor and
# completes. See docs/serving.md, "Multi-node serving".
set -euo pipefail

MODISD=${MODISD:-/tmp/modisd}
MODISPROXY=${MODISPROXY:-/tmp/modisproxy}
N1=127.0.0.1:9951
N2=127.0.0.1:9952
FRONT=127.0.0.1:9950
WORKDIR=$(mktemp -d)
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

wait_healthy() { # addr
  for _ in $(seq 1 50); do
    curl -sf "http://$1/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "node $1 never became healthy" >&2
  return 1
}

submit() { # workload -> job id (via the proxy)
  curl -sf -X POST "http://$FRONT/v1/jobs" \
    -d "{\"workload\":\"$1\",\"algorithm\":\"bi\",\"options\":{\"epsilon\":0.15,\"max_level\":2,\"seed\":2},\"timeout_ms\":120000}" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["job_id"])'
}

wait_done() { # job id (via the proxy)
  for _ in $(seq 1 300); do
    curl -sf -o "$WORKDIR/job.json" "http://$FRONT/v1/jobs/$1"
    if grep -q '"status":"done"' "$WORKDIR/job.json"; then return 0; fi
    if grep -qE '"status":"(failed|cancelled)"' "$WORKDIR/job.json"; then
      cat "$WORKDIR/job.json" >&2
      return 1
    fi
    sleep 0.2
  done
  echo "job $1 never finished" >&2
  return 1
}

shard_jobs() { # node addr, descriptor hash -> jobs count for that shard
  curl -sf "http://$1/healthz" | python3 -c '
import json, sys
h = sys.argv[1]
node = json.load(sys.stdin)["node"]
print(next((s["jobs"] for s in node["shards"] if s["hash"] == h), 0))
' "$2"
}

echo "== start two nodes serving the same workloads"
"$MODISD" -addr "$N1" -advertise "$N1" -tasks t1,t3 -rows 100 \
  -state-dir "$WORKDIR/state1" -commit-interval 20ms &
PIDS+=($!)
PID1=$!
"$MODISD" -addr "$N2" -advertise "$N2" -tasks t1,t3 -rows 100 \
  -state-dir "$WORKDIR/state2" -commit-interval 20ms &
PIDS+=($!)
PID2=$!
wait_healthy "$N1"
wait_healthy "$N2"

echo "== start the proxy"
"$MODISPROXY" -addr "$FRONT" -nodes "$N1,$N2" -health-interval 500ms &
PIDS+=($!)
wait_healthy "$FRONT"

echo "== the merged catalog names both workloads with their hashes"
curl -sf "http://$FRONT/v1/workloads" >"$WORKDIR/catalog.json"
H1=$(python3 -c 'import json,sys; print(next(w["hash"] for w in json.load(sys.stdin) if w["name"]=="t1"))' <"$WORKDIR/catalog.json")
H3=$(python3 -c 'import json,sys; print(next(w["hash"] for w in json.load(sys.stdin) if w["name"]=="t3"))' <"$WORKDIR/catalog.json")
test "${#H1}" = 64 && test "${#H3}" = 64 && test "$H1" != "$H3"

echo "== submit one job per workload through the proxy"
J1=$(submit t1)
J3=$(submit t3)
wait_done "$J1"
wait_done "$J3"
grep -q '"skyline":\[{' "$WORKDIR/job.json"

echo "== the two shards landed on distinct nodes"
T1_ON_N1=$(shard_jobs "$N1" "$H1")
T1_ON_N2=$(shard_jobs "$N2" "$H1")
T3_ON_N1=$(shard_jobs "$N1" "$H3")
T3_ON_N2=$(shard_jobs "$N2" "$H3")
echo "   t1 jobs: node1=$T1_ON_N1 node2=$T1_ON_N2; t3 jobs: node1=$T3_ON_N1 node2=$T3_ON_N2"
# Each workload ran on exactly one node, and not the same one.
test $((T1_ON_N1 > 0 ? 1 : 0)) -ne $((T1_ON_N2 > 0 ? 1 : 0))
test $((T3_ON_N1 > 0 ? 1 : 0)) -ne $((T3_ON_N2 > 0 ? 1 : 0))
test $((T1_ON_N1 > 0 ? 1 : 0)) -ne $((T3_ON_N1 > 0 ? 1 : 0))

echo "== SIGKILL the owner of t3 and resubmit through the proxy"
if [ "$T3_ON_N1" -gt 0 ]; then
  OWNER_PID=$PID1 SURVIVOR=$N2
else
  OWNER_PID=$PID2 SURVIVOR=$N1
fi
kill -9 "$OWNER_PID"
for _ in $(seq 1 50); do
  kill -0 "$OWNER_PID" 2>/dev/null || break
  sleep 0.2
done

J3B=$(submit t3)
wait_done "$J3B"
grep -q '"skyline":\[{' "$WORKDIR/job.json"

echo "== the rerouted job ran on the survivor, and the proxy reports the dead node"
test "$(shard_jobs "$SURVIVOR" "$H3")" -gt 0
curl -sf "http://$FRONT/healthz" | grep -q '"status":"degraded"'

echo "fleet smoke: OK"
