#!/usr/bin/env bash
# Load smoke: one modisd node under sustained two-workload load.
#
# Drives the daemon-global inference pool the way production traffic
# would: N closed-loop modisload clients round-robin submit/wait over
# two workloads for DURATION, then the harness scrapes /metrics deltas
# and asserts the sharing machinery actually engaged — at least one
# exact pass merged windows of concurrent runs (nonzero merge rate)
# and the shard memo answered plan-time probes (nonzero memo hits).
# Zero completed requests, a zero merge count, or zero memo hits fail
# the script. See docs/serving.md, "Metrics reference" and "Tuning the
# inference pool".
set -euo pipefail

MODISD=${MODISD:-/tmp/modisd}
MODISLOAD=${MODISLOAD:-/tmp/modisload}
ADDR=${ADDR:-127.0.0.1:9960}
DURATION=${DURATION:-30s}
CLIENTS=${CLIENTS:-4}
WORKERS=${WORKERS:-2}
OUT=${OUT:-/tmp/load_smoke_capture.json}
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

"$MODISD" -addr "$ADDR" -tasks t1,t3 -rows 60 -workers "$WORKERS" &
PIDS+=($!)

for _ in $(seq 1 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null && break
  sleep 0.2
done
curl -sf "http://$ADDR/healthz" >/dev/null

# The pool gauge must reflect the -workers cap before any load runs.
POOL=$(curl -sf "http://$ADDR/metrics" | awk '/^modis_pool_workers /{print int($2)}')
if [ "$POOL" != "$WORKERS" ]; then
  echo "modis_pool_workers = $POOL, want $WORKERS" >&2
  exit 1
fi

"$MODISLOAD" -addr "$ADDR" -clients "$CLIENTS" -duration "$DURATION" \
  -budget 120 -max-level 3 \
  -assert-merges -assert-memo-hits \
  -out "$OUT"

echo "load smoke passed; capture at $OUT" >&2
